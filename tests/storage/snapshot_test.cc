// Binary snapshot format: round-trip fidelity (dictionary, triples,
// provenance, graph stats, score-ordered shapes in their exact laziness
// state, rules, generation) across the {copy, mmap} x {raw,
// varint+delta} matrix, and rejection of foreign, truncated,
// version-mismatched, codec-tampered, and bit-flipped files with typed
// errors — never a crash, never UB, in either load mode.

#include "storage/snapshot.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "storage/mapped_file.h"
#include "testing/paper_world.h"
#include "util/hash.h"

namespace trinit::storage {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good());
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void Spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

// Wire-format constants the tampering helpers below rely on (see
// snapshot.cc): a 32-byte header, then 8 table entries of 32 bytes
// each — u32 id, u32 flags (low byte = codec), u64 offset, u64 length,
// u64 FNV-1a checksum.
constexpr size_t kHeaderBytes = 32;
constexpr size_t kTableEntryBytes = 32;
constexpr uint32_t kMetaId = 1;
constexpr uint32_t kTriplesId = 3;
constexpr uint32_t kProvenanceId = 7;

size_t TableEntryPos(const std::string& bytes, uint32_t id) {
  for (uint32_t i = 0; i < 8; ++i) {
    size_t pos = kHeaderBytes + i * kTableEntryBytes;
    uint32_t got = 0;
    std::memcpy(&got, bytes.data() + pos, sizeof(got));
    if (got == id) return pos;
  }
  ADD_FAILURE() << "section " << id << " not in table";
  return 0;
}

void SetSectionFlags(std::string* bytes, uint32_t id, uint32_t flags) {
  size_t pos = TableEntryPos(*bytes, id);
  std::memcpy(bytes->data() + pos + 4, &flags, sizeof(flags));
}

void SetSectionLength(std::string* bytes, uint32_t id, uint64_t length) {
  size_t pos = TableEntryPos(*bytes, id);
  std::memcpy(bytes->data() + pos + 16, &length, sizeof(length));
}

std::pair<uint64_t, uint64_t> SectionExtent(const std::string& bytes,
                                            uint32_t id) {
  size_t pos = TableEntryPos(bytes, id);
  uint64_t offset = 0, length = 0;
  std::memcpy(&offset, bytes.data() + pos + 8, sizeof(offset));
  std::memcpy(&length, bytes.data() + pos + 16, sizeof(length));
  return {offset, length};
}

/// Recomputes a section's table checksum after its payload was
/// tampered with — the way past the checksum gate and into the
/// decoders, which must still reject garbage with typed errors.
void FixSectionChecksum(std::string* bytes, uint32_t id) {
  auto [offset, length] = SectionExtent(*bytes, id);
  uint64_t sum = Fnv1a64({bytes->data() + offset,
                          static_cast<size_t>(length)});
  size_t pos = TableEntryPos(*bytes, id);
  std::memcpy(bytes->data() + pos + 24, &sum, sizeof(sum));
}

constexpr ReadOptions kCopyRead{LoadMode::kCopy,
                                rdf::SnapshotValidation::kFull};
constexpr ReadOptions kMappedRead{LoadMode::kMapped,
                                  rdf::SnapshotValidation::kFull};
constexpr ReadOptions kTrustedRead{LoadMode::kMapped,
                                   rdf::SnapshotValidation::kTrusted};

/// Paper world + rules, with two score-ordered shapes forced built so
/// the snapshot has a nontrivial laziness state to preserve.
struct Fixture {
  xkg::Xkg xkg = trinit::testing::BuildPaperXkg();
  relax::RuleSet rules = trinit::testing::BuildPaperRules();

  Fixture() {
    rules.ResolveAgainst(xkg.dict());
    // Touch the P and PO shapes (predicate-bound lookups).
    rdf::TermId born = xkg.dict().Find(rdf::TermKind::kResource, "bornIn");
    rdf::TermId ulm = xkg.dict().Find(rdf::TermKind::kResource, "Ulm");
    (void)xkg.store().ScoreOrdered(rdf::kNullTerm, born, rdf::kNullTerm);
    (void)xkg.store().ScoreOrdered(rdf::kNullTerm, born, ulm);
    EXPECT_EQ(xkg.store().score_shapes_built(), 2u);
  }
};

/// Full state equality between the fixture and a loaded snapshot —
/// shared by the plain round-trip test and the mode/codec matrix.
void ExpectSameState(const Fixture& f, const LoadedSnapshot& loaded,
                     const char* label) {
  SCOPED_TRACE(label);
  const xkg::Xkg& out = loaded.xkg;
  ASSERT_EQ(out.dict().size(), f.xkg.dict().size());
  f.xkg.dict().ForEach([&](rdf::TermId id) {
    EXPECT_EQ(out.dict().label(id), f.xkg.dict().label(id));
    EXPECT_EQ(out.dict().kind(id), f.xkg.dict().kind(id));
  });
  ASSERT_EQ(out.store().size(), f.xkg.store().size());
  for (rdf::TripleId id = 0; id < f.xkg.store().size(); ++id) {
    const rdf::Triple& a = f.xkg.store().triple(id);
    const rdf::Triple& b = out.store().triple(id);
    EXPECT_EQ(a.s, b.s);
    EXPECT_EQ(a.p, b.p);
    EXPECT_EQ(a.o, b.o);
    EXPECT_EQ(a.confidence, b.confidence);
    EXPECT_EQ(a.count, b.count);
    EXPECT_EQ(a.source, b.source);
  }
  EXPECT_EQ(out.kg_triple_count(), f.xkg.kg_triple_count());
  EXPECT_EQ(out.store().score_shapes_built(),
            f.xkg.store().score_shapes_built());
  for (rdf::TermId p : f.xkg.stats().predicates()) {
    EXPECT_TRUE(std::ranges::equal(f.xkg.stats().Args(p),
                                   out.stats().Args(p)));
  }
  for (rdf::TripleId id = 0; id < f.xkg.store().size(); ++id) {
    const auto& pa = f.xkg.ProvenanceFor(id);
    const auto& pb = out.ProvenanceFor(id);
    ASSERT_EQ(pa.size(), pb.size()) << "triple " << id;
    for (size_t i = 0; i < pa.size(); ++i) {
      EXPECT_EQ(pa[i].doc_id, pb[i].doc_id);
      EXPECT_EQ(pa[i].sentence_idx, pb[i].sentence_idx);
      EXPECT_EQ(pa[i].sentence, pb[i].sentence);
      EXPECT_EQ(pa[i].extraction_confidence, pb[i].extraction_confidence);
    }
  }
  EXPECT_TRUE(out.provenance_status().ok());
  ASSERT_EQ(loaded.rules.size(), f.rules.size());
  for (size_t i = 0; i < f.rules.size(); ++i) {
    EXPECT_EQ(loaded.rules.rules()[i].ToString(),
              f.rules.rules()[i].ToString());
  }
}

TEST(SnapshotTest, RoundTripPreservesEverything) {
  Fixture f;
  const std::string path = TempPath("roundtrip.trinit");
  ASSERT_TRUE(SnapshotWriter::Write(f.xkg, f.rules, /*generation=*/7, path)
                  .ok());

  auto loaded = SnapshotReader::Read(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  const xkg::Xkg& out = loaded->xkg;

  // Dictionary: same size, same (id -> kind, label) mapping.
  ASSERT_EQ(out.dict().size(), f.xkg.dict().size());
  f.xkg.dict().ForEach([&](rdf::TermId id) {
    EXPECT_EQ(out.dict().label(id), f.xkg.dict().label(id));
    EXPECT_EQ(out.dict().kind(id), f.xkg.dict().kind(id));
  });

  // Triples with full payloads, in identical id order.
  ASSERT_EQ(out.store().size(), f.xkg.store().size());
  for (rdf::TripleId id = 0; id < f.xkg.store().size(); ++id) {
    const rdf::Triple& a = f.xkg.store().triple(id);
    const rdf::Triple& b = out.store().triple(id);
    EXPECT_EQ(a.s, b.s);
    EXPECT_EQ(a.p, b.p);
    EXPECT_EQ(a.o, b.o);
    EXPECT_EQ(a.confidence, b.confidence);
    EXPECT_EQ(a.count, b.count);
    EXPECT_EQ(a.source, b.source);
  }
  EXPECT_EQ(out.kg_triple_count(), f.xkg.kg_triple_count());
  EXPECT_EQ(out.store().total_count(), f.xkg.store().total_count());
  EXPECT_EQ(out.store().max_count(), f.xkg.store().max_count());

  // The laziness state travels: exactly the two pre-built shapes are
  // built after load — no rebuild, no eager extra work.
  EXPECT_EQ(out.store().score_shapes_built(), 2u);
  rdf::TermId born = out.dict().Find(rdf::TermKind::kResource, "bornIn");
  rdf::ScoreOrderIndex::List a =
      f.xkg.store().ScoreOrdered(rdf::kNullTerm, born, rdf::kNullTerm);
  rdf::ScoreOrderIndex::List b =
      out.store().ScoreOrdered(rdf::kNullTerm, born, rdf::kNullTerm);
  ASSERT_EQ(a.ids.size(), b.ids.size());
  EXPECT_EQ(a.mass, b.mass);
  for (size_t i = 0; i < a.ids.size(); ++i) EXPECT_EQ(a.ids[i], b.ids[i]);
  EXPECT_EQ(out.store().score_shapes_built(), 2u);  // lookup built nothing

  // Graph statistics, args included.
  ASSERT_EQ(out.stats().predicates(), f.xkg.stats().predicates());
  for (rdf::TermId p : f.xkg.stats().predicates()) {
    const auto* sa = f.xkg.stats().ForPredicate(p);
    const auto* sb = out.stats().ForPredicate(p);
    ASSERT_NE(sb, nullptr);
    EXPECT_EQ(sa->triple_count, sb->triple_count);
    EXPECT_EQ(sa->evidence_count, sb->evidence_count);
    EXPECT_EQ(sa->distinct_subjects, sb->distinct_subjects);
    EXPECT_EQ(sa->distinct_objects, sb->distinct_objects);
    EXPECT_TRUE(std::ranges::equal(f.xkg.stats().Args(p),
                                   out.stats().Args(p)));
  }

  // Provenance, sentence text included.
  for (rdf::TripleId id = 0; id < f.xkg.store().size(); ++id) {
    const auto& pa = f.xkg.ProvenanceFor(id);
    const auto& pb = out.ProvenanceFor(id);
    ASSERT_EQ(pa.size(), pb.size()) << "triple " << id;
    for (size_t i = 0; i < pa.size(); ++i) {
      EXPECT_EQ(pa[i].doc_id, pb[i].doc_id);
      EXPECT_EQ(pa[i].sentence_idx, pb[i].sentence_idx);
      EXPECT_EQ(pa[i].sentence, pb[i].sentence);
      EXPECT_EQ(pa[i].extraction_confidence, pb[i].extraction_confidence);
    }
  }

  // Rules: same renderings, kinds, and weights (no re-mining needed).
  ASSERT_EQ(loaded->rules.size(), f.rules.size());
  for (size_t i = 0; i < f.rules.size(); ++i) {
    EXPECT_EQ(loaded->rules.rules()[i].ToString(),
              f.rules.rules()[i].ToString());
    EXPECT_EQ(loaded->rules.rules()[i].kind, f.rules.rules()[i].kind);
  }

  EXPECT_EQ(loaded->generation, 7u);
  EXPECT_EQ(loaded->report.terms, f.xkg.dict().size());
  EXPECT_EQ(loaded->report.triples, f.xkg.store().size());
  EXPECT_EQ(loaded->report.permutations_restored, 5u);
  EXPECT_EQ(loaded->report.score_shapes_restored, 2u);
  EXPECT_EQ(loaded->report.rules, f.rules.size());
  EXPECT_EQ(loaded->report.index_rebuilds, 0u);
}

TEST(SnapshotTest, MissingFileIsIoError) {
  auto r = SnapshotReader::Read(TempPath("does_not_exist.trinit"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(SnapshotTest, ForeignFileIsRejectedByMagic) {
  const std::string path = TempPath("foreign.trinit");
  Spit(path, "T\tR:AlbertEinstein\tR:bornIn\tR:Ulm\t1\t1\n");  // a TSV dump
  auto r = SnapshotReader::Read(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);

  Spit(path, "");  // empty file
  r = SnapshotReader::Read(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(SnapshotTest, WrongVersionIsFailedPrecondition) {
  Fixture f;
  const std::string path = TempPath("version.trinit");
  ASSERT_TRUE(SnapshotWriter::Write(f.xkg, f.rules, 0, path).ok());
  std::string bytes = Slurp(path);
  // The version field sits right after the 8-byte magic.
  uint32_t bumped = kSnapshotVersion + 1;
  std::memcpy(bytes.data() + 8, &bumped, sizeof(bumped));
  Spit(path, bytes);
  auto r = SnapshotReader::Read(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SnapshotTest, TruncationsAreRejectedCleanly) {
  Fixture f;
  const std::string path = TempPath("truncated.trinit");
  ASSERT_TRUE(SnapshotWriter::Write(f.xkg, f.rules, 0, path).ok());
  const std::string bytes = Slurp(path);
  ASSERT_GT(bytes.size(), 64u);

  // Cut the file at a spread of lengths, including mid-header,
  // mid-table, and one byte short: every cut must produce a typed
  // error, never a crash (asan/ubsan runs this too).
  const size_t cuts[] = {0,  4,  8,  12, 16,  31,  32,  63,
                         64, 100, bytes.size() / 2, bytes.size() - 1};
  for (size_t cut : cuts) {
    Spit(path, bytes.substr(0, cut));
    auto r = SnapshotReader::Read(path);
    ASSERT_FALSE(r.ok()) << "cut at " << cut;
    EXPECT_TRUE(r.status().code() == StatusCode::kInvalidArgument ||
                r.status().code() == StatusCode::kParseError)
        << "cut at " << cut << ": " << r.status();
  }
}

TEST(SnapshotTest, FlippedBytesNeverLoadSilentlyWrong) {
  Fixture f;
  const std::string path = TempPath("flipped.trinit");
  ASSERT_TRUE(SnapshotWriter::Write(f.xkg, f.rules, /*generation=*/3, path)
                  .ok());
  const std::string bytes = Slurp(path);

  // Flip one byte at a stride across the whole file. Every payload byte
  // is under a section checksum and must fail; a flip in the header or
  // table must fail too (magic/version/bounds/checksum). Padding bytes
  // between sections are outside any checksum, so the load may succeed
  // there — but then it must equal the pristine state (generation 3).
  size_t failures = 0;
  for (size_t pos = 0; pos < bytes.size(); pos += 37) {
    std::string mutated = bytes;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x5a);
    Spit(path, mutated);
    auto r = SnapshotReader::Read(path);
    if (!r.ok()) {
      ++failures;
      EXPECT_TRUE(r.status().code() == StatusCode::kInvalidArgument ||
                  r.status().code() == StatusCode::kParseError ||
                  r.status().code() == StatusCode::kFailedPrecondition)
          << "flip at " << pos << ": " << r.status();
    } else {
      EXPECT_EQ(r->xkg.store().size(), f.xkg.store().size())
          << "flip at " << pos;
      EXPECT_EQ(r->generation, 3u) << "flip at " << pos;
    }
  }
  // The vast majority of positions are covered payload/header bytes.
  EXPECT_GT(failures, bytes.size() / 37 / 2);

  // The generation field (header bytes 16-23) is covered by no section
  // checksum; the header's own checksum must reject every flip there —
  // a wrong generation must never load silently.
  for (size_t pos = 16; pos < 24; ++pos) {
    std::string mutated = bytes;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x01);
    Spit(path, mutated);
    auto r = SnapshotReader::Read(path);
    ASSERT_FALSE(r.ok()) << "generation flip at " << pos;
    EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  }
}

TEST(SnapshotTest, UnbuiltIndexStaysLazyAfterLoad) {
  xkg::Xkg xkg = trinit::testing::BuildPaperXkg();  // nothing touched
  relax::RuleSet rules;
  const std::string path = TempPath("lazy.trinit");
  ASSERT_TRUE(SnapshotWriter::Write(xkg, rules, 0, path).ok());
  auto loaded = SnapshotReader::Read(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->report.score_shapes_restored, 0u);
  EXPECT_EQ(loaded->xkg.store().score_shapes_built(), 0u);
  // First-touch builds still work on the loaded store.
  rdf::TermId born =
      loaded->xkg.dict().Find(rdf::TermKind::kResource, "bornIn");
  rdf::ScoreOrderIndex::List list =
      loaded->xkg.store().ScoreOrdered(rdf::kNullTerm, born, rdf::kNullTerm);
  EXPECT_FALSE(list.ids.empty());
  EXPECT_EQ(loaded->xkg.store().score_shapes_built(), 1u);
}

// ------------------------------------------------- mode/codec matrix

TEST(SnapshotTest, MatrixRoundTripsByteIdenticallyAcrossModesAndCodecs) {
  Fixture f;
  const std::string raw_path = TempPath("matrix_raw.trinit");
  const std::string varint_path = TempPath("matrix_varint.trinit");
  ASSERT_TRUE(SnapshotWriter::Write(f.xkg, f.rules, 9, raw_path,
                                    {SectionCodec::kRaw, kSnapshotVersion})
                  .ok());
  ASSERT_TRUE(SnapshotWriter::Write(
                  f.xkg, f.rules, 9, varint_path,
                  {SectionCodec::kVarintDelta, kSnapshotVersion})
                  .ok());
  // The codec earns its keep on real worlds (bench-gated at >=2x); on
  // the tiny paper fixture it must at least strictly shrink the file.
  EXPECT_LT(Slurp(varint_path).size(), Slurp(raw_path).size());

  struct Case {
    const char* label;
    const std::string& path;
    ReadOptions options;
  };
  const Case cases[] = {
      {"raw/copy", raw_path, kCopyRead},
      {"raw/mmap", raw_path, kMappedRead},
      {"raw/mmap-trusted", raw_path, kTrustedRead},
      {"varint/copy", varint_path, kCopyRead},
      {"varint/mmap", varint_path, kMappedRead},
      {"varint/mmap-trusted", varint_path, kTrustedRead},
  };
  for (const Case& c : cases) {
    auto loaded = SnapshotReader::Read(c.path, c.options);
    ASSERT_TRUE(loaded.ok()) << c.label << ": " << loaded.status();
    ExpectSameState(f, *loaded, c.label);
    EXPECT_EQ(loaded->generation, 9u) << c.label;

    const LoadReport& r = loaded->report;
    // v3 files carry nine sections (the SHARDS decomposition rides
    // along, empty on this unsharded fixture).
    EXPECT_EQ(r.sections_raw + r.sections_varint, 9u) << c.label;
    EXPECT_EQ(r.shard_count, 0u) << c.label;
    const bool mapped_mode = c.options.mode == LoadMode::kMapped &&
                             MappedFile::Supported();
    EXPECT_EQ(r.mapped, mapped_mode) << c.label;
    if (!mapped_mode) {
      // Copying loads decode everything and read every byte.
      EXPECT_EQ(r.sections_mapped, 0u) << c.label;
      EXPECT_EQ(r.bytes_touched, r.bytes) << c.label;
    } else if (c.options.verify == rdf::SnapshotValidation::kTrusted &&
               c.path == raw_path) {
      // The headline path: raw sections stay on disk, untouched.
      EXPECT_GT(r.sections_mapped, 0u) << c.label;
      EXPECT_TRUE(r.provenance_deferred) << c.label;
      EXPECT_LT(r.bytes_touched, r.bytes) << c.label;
    } else if (c.options.verify == rdf::SnapshotValidation::kFull) {
      // Full verification checksums everything even when mapped.
      EXPECT_EQ(r.bytes_touched, r.bytes) << c.label;
      EXPECT_FALSE(r.provenance_deferred) << c.label;
    }
    EXPECT_EQ(r.sections_varint, c.path == varint_path ? 5u : 0u)
        << c.label;
  }
}

TEST(SnapshotTest, V1FormatStillWritesAndLoadsInBothModes) {
  Fixture f;
  const std::string path = TempPath("v1_compat.trinit");
  ASSERT_TRUE(SnapshotWriter::Write(f.xkg, f.rules, 4, path,
                                    {SectionCodec::kRaw, 1})
                  .ok());
  for (const ReadOptions& options : {kCopyRead, kMappedRead, kTrustedRead}) {
    auto loaded = SnapshotReader::Read(path, options);
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    ExpectSameState(f, *loaded, "v1");
    EXPECT_EQ(loaded->generation, 4u);
    // v1 layouts are not alignment-safe to view: even mapped+trusted
    // opens degrade to the fully-verifying copying decode.
    EXPECT_EQ(loaded->report.sections_mapped, 0u);
    EXPECT_FALSE(loaded->report.provenance_deferred);
    EXPECT_EQ(loaded->report.bytes_touched, loaded->report.bytes);
  }
}

TEST(SnapshotTest, WriterRejectsImpossibleOptions) {
  Fixture f;
  const std::string path = TempPath("bad_options.trinit");
  // v1 has no codec byte to record a codec in.
  auto s = SnapshotWriter::Write(f.xkg, f.rules, 0, path,
                                 {SectionCodec::kVarintDelta, 1});
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  // Unknown future format version.
  s = SnapshotWriter::Write(f.xkg, f.rules, 0, path,
                            {SectionCodec::kRaw, kSnapshotVersion + 1});
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

// --------------------------------------------- hostile mapped files

TEST(SnapshotTest, UnknownCodecByteIsFailedPrecondition) {
  Fixture f;
  const std::string path = TempPath("unknown_codec.trinit");
  ASSERT_TRUE(SnapshotWriter::Write(f.xkg, f.rules, 0, path).ok());
  std::string bytes = Slurp(path);
  SetSectionFlags(&bytes, kTriplesId, 2);  // codec this build never wrote
  Spit(path, bytes);
  for (const ReadOptions& options : {kCopyRead, kMappedRead, kTrustedRead}) {
    auto r = SnapshotReader::Read(path, options);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  }
}

TEST(SnapshotTest, ReservedFlagBitsAreRejected) {
  Fixture f;
  const std::string path = TempPath("reserved_flags.trinit");
  ASSERT_TRUE(SnapshotWriter::Write(f.xkg, f.rules, 0, path).ok());
  std::string bytes = Slurp(path);
  SetSectionFlags(&bytes, kTriplesId, 0x100);  // above the codec byte
  Spit(path, bytes);
  for (const ReadOptions& options : {kCopyRead, kTrustedRead}) {
    auto r = SnapshotReader::Read(path, options);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  }
}

TEST(SnapshotTest, CodecOnUncompressibleSectionIsRejected) {
  Fixture f;
  const std::string path = TempPath("codec_on_meta.trinit");
  ASSERT_TRUE(SnapshotWriter::Write(f.xkg, f.rules, 0, path).ok());
  std::string bytes = Slurp(path);
  SetSectionFlags(&bytes, kMetaId, 1);  // META is always raw
  Spit(path, bytes);
  auto r = SnapshotReader::Read(path, kTrustedRead);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(SnapshotTest, CodecByteInV1SnapshotIsRejected) {
  Fixture f;
  const std::string path = TempPath("v1_codec.trinit");
  ASSERT_TRUE(SnapshotWriter::Write(f.xkg, f.rules, 0, path,
                                    {SectionCodec::kRaw, 1})
                  .ok());
  std::string bytes = Slurp(path);
  SetSectionFlags(&bytes, kTriplesId, 1);  // v1 files carry no codecs
  Spit(path, bytes);
  auto r = SnapshotReader::Read(path, kCopyRead);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(SnapshotTest, SectionLengthOverflowingMappingIsRejected) {
  Fixture f;
  const std::string path = TempPath("overflow_len.trinit");
  ASSERT_TRUE(SnapshotWriter::Write(f.xkg, f.rules, 0, path).ok());
  const std::string pristine = Slurp(path);
  // A length that runs past the mapping, one that wraps offset+length
  // past 2^64, and one just one byte too long.
  auto [offset, length] = SectionExtent(pristine, kTriplesId);
  const uint64_t hostile[] = {pristine.size(), ~uint64_t{0} - offset + 2,
                              pristine.size() - offset + 1};
  for (uint64_t len : hostile) {
    std::string bytes = pristine;
    SetSectionLength(&bytes, kTriplesId, len);
    Spit(path, bytes);
    for (const ReadOptions& options : {kCopyRead, kTrustedRead}) {
      auto r = SnapshotReader::Read(path, options);
      ASSERT_FALSE(r.ok()) << "length " << len;
      EXPECT_EQ(r.status().code(), StatusCode::kParseError) << len;
    }
  }
}

TEST(SnapshotTest, TruncationsAreRejectedCleanlyInMappedMode) {
  Fixture f;
  const std::string path = TempPath("truncated_mmap.trinit");
  ASSERT_TRUE(SnapshotWriter::Write(f.xkg, f.rules, 0, path).ok());
  const std::string bytes = Slurp(path);
  // Same cut schedule as the copying-path test, including mid-header
  // and mid-section-table cuts, through the mmap reader — and through
  // mmap+trusted, which must *still* catch every frame violation.
  const size_t cuts[] = {0,  4,  8,  12, 16,  31,  32,  63,
                         64, 100, bytes.size() / 2, bytes.size() - 1};
  for (size_t cut : cuts) {
    Spit(path, bytes.substr(0, cut));
    for (const ReadOptions& options : {kMappedRead, kTrustedRead}) {
      auto r = SnapshotReader::Read(path, options);
      ASSERT_FALSE(r.ok()) << "cut at " << cut;
      EXPECT_TRUE(r.status().code() == StatusCode::kInvalidArgument ||
                  r.status().code() == StatusCode::kParseError)
          << "cut at " << cut << ": " << r.status();
    }
  }
}

TEST(SnapshotTest, FlippedBytesNeverLoadSilentlyWrongInMappedMode) {
  Fixture f;
  const std::string path = TempPath("flipped_mmap.trinit");
  ASSERT_TRUE(SnapshotWriter::Write(f.xkg, f.rules, /*generation=*/3, path)
                  .ok());
  const std::string bytes = Slurp(path);
  for (size_t pos = 0; pos < bytes.size(); pos += 37) {
    std::string mutated = bytes;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x5a);
    Spit(path, mutated);
    // Fully-verifying mapped loads give the copying path's guarantee.
    auto r = SnapshotReader::Read(path, kMappedRead);
    if (!r.ok()) {
      EXPECT_TRUE(r.status().code() == StatusCode::kInvalidArgument ||
                  r.status().code() == StatusCode::kParseError ||
                  r.status().code() == StatusCode::kFailedPrecondition)
          << "flip at " << pos << ": " << r.status();
    } else {
      EXPECT_EQ(r->generation, 3u) << "flip at " << pos;
    }
    // Trusted mapped loads may *accept* a flip inside a viewed payload
    // (the documented contract) but must never crash or corrupt memory
    // — the sanitizer jobs run this loop too. Walking the store and
    // provenance exercises every deferred path against the flip.
    auto t = SnapshotReader::Read(path, kTrustedRead);
    if (t.ok()) {
      for (rdf::TripleId id = 0; id < t->xkg.store().size(); ++id) {
        (void)t->xkg.ProvenanceFor(id);
      }
      (void)t->xkg.provenance_status();
    }
  }
}

TEST(SnapshotTest, CorruptVarintStreamIsRejectedNotUb) {
  Fixture f;
  const std::string path = TempPath("corrupt_varint.trinit");
  ASSERT_TRUE(SnapshotWriter::Write(
                  f.xkg, f.rules, 0, path,
                  {SectionCodec::kVarintDelta, kSnapshotVersion})
                  .ok());
  const std::string pristine = Slurp(path);
  auto [offset, length] = SectionExtent(pristine, kTriplesId);
  ASSERT_GT(length, 0u);
  // Every flip position inside the encoded stream, with the section
  // checksum recomputed so the decoder (not the checksum gate) must
  // catch the damage: a typed error or a successful decode of some
  // other valid stream — never UB, never a crash.
  size_t rejected = 0;
  for (uint64_t pos = 0; pos < length; ++pos) {
    std::string bytes = pristine;
    bytes[offset + pos] = static_cast<char>(bytes[offset + pos] ^ 0xff);
    FixSectionChecksum(&bytes, kTriplesId);
    Spit(path, bytes);
    for (const ReadOptions& options : {kCopyRead, kTrustedRead}) {
      auto r = SnapshotReader::Read(path, options);
      if (!r.ok()) {
        ++rejected;
        EXPECT_TRUE(r.status().code() == StatusCode::kInvalidArgument ||
                    r.status().code() == StatusCode::kParseError)
            << "flip at " << pos << ": " << r.status();
      }
    }
  }
  EXPECT_GT(rejected, 0u);
}

TEST(SnapshotTest, DeferredProvenanceCorruptionSurfacesAsStatus) {
  Fixture f;
  const std::string path = TempPath("deferred_prov.trinit");
  ASSERT_TRUE(SnapshotWriter::Write(f.xkg, f.rules, 0, path).ok());
  std::string bytes = Slurp(path);
  auto [offset, length] = SectionExtent(bytes, kProvenanceId);
  ASSERT_GT(length, 8u);
  bytes[offset + length / 2] =
      static_cast<char>(bytes[offset + length / 2] ^ 0x5a);
  Spit(path, bytes);

  // Full verification catches the flip at open, both modes.
  for (const ReadOptions& options : {kCopyRead, kMappedRead}) {
    auto r = SnapshotReader::Read(path, options);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  }

  // Trusted defers the provenance decode — the open succeeds, and the
  // damage surfaces as a typed status (plus empty provenance, never
  // garbage) on first touch.
  auto t = SnapshotReader::Read(path, kTrustedRead);
  if (!MappedFile::Supported()) return;
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_TRUE(t->report.provenance_deferred);
  for (rdf::TripleId id = 0; id < t->xkg.store().size(); ++id) {
    EXPECT_TRUE(t->xkg.ProvenanceFor(id).empty());
  }
  Status s = t->xkg.provenance_status();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
}

TEST(SnapshotTest, TrustedCopyModeStillFullyVerifies) {
  Fixture f;
  const std::string path = TempPath("trusted_copy.trinit");
  ASSERT_TRUE(SnapshotWriter::Write(f.xkg, f.rules, 0, path).ok());
  std::string bytes = Slurp(path);
  auto [offset, length] = SectionExtent(bytes, kTriplesId);
  bytes[offset] = static_cast<char>(bytes[offset] ^ 0x5a);
  Spit(path, bytes);
  // kTrusted is only honored on the mapped view path; asking for it
  // with a copying load keeps every checksum.
  auto r = SnapshotReader::Read(
      path, {LoadMode::kCopy, rdf::SnapshotValidation::kTrusted});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

}  // namespace
}  // namespace trinit::storage
