#include "util/status.h"

#include <gtest/gtest.h>

#include "util/result.h"

namespace trinit {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("no such predicate");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "no such predicate");
  EXPECT_EQ(s.ToString(), "NotFound: no such predicate");
}

TEST(StatusTest, FactoryCodesMatch) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::Ok(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, StatusCodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "Ok");
  EXPECT_STREQ(StatusCodeName(StatusCode::kParseError), "ParseError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::Ok();
}

Status Chain(int x) {
  TRINIT_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chain(3).ok());
  EXPECT_EQ(Chain(-1).code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-7), -7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  TRINIT_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(ResultTest, AssignOrReturnChains) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_EQ(Quarter(6).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Quarter(5).status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace trinit
