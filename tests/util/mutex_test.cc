// Tests for the annotated Mutex/SharedMutex wrappers (util/mutex.h):
// exclusive mutual exclusion, shared-vs-exclusive admission, deadline
// (TryLockFor) behavior, and the RAII guards. These are the wrappers
// every lock in the library goes through (tools/lint.py bans the raw
// std types), so their semantics are load-bearing for everything in
// docs/CONCURRENCY.md.

#include "util/mutex.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

namespace trinit {
namespace {

using std::chrono::milliseconds;

TEST(MutexTest, ExclusionUnderContention) {
  Mutex mu;
  int counter = 0;  // deliberately unsynchronized except via mu
  constexpr int kThreads = 8;
  constexpr int kIncrements = 2000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (std::thread& th : pool) th.join();
  EXPECT_EQ(counter, kThreads * kIncrements);
}

TEST(MutexTest, TryLockFailsWhileHeldAndSucceedsAfter) {
  Mutex mu;
  mu.Lock();
  std::thread other([&] {
    EXPECT_FALSE(mu.TryLock());
    // Zero/negative deadlines degenerate to TryLock, not a wait.
    EXPECT_FALSE(mu.TryLockFor(milliseconds(0)));
    EXPECT_FALSE(mu.TryLockFor(milliseconds(-5)));
  });
  other.join();
  mu.Unlock();
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, TryLockForTimesOutThenAcquires) {
  Mutex mu;
  mu.Lock();
  std::thread other([&] {
    auto start = std::chrono::steady_clock::now();
    EXPECT_FALSE(mu.TryLockFor(milliseconds(30)));
    auto waited = std::chrono::steady_clock::now() - start;
    // The deadline must actually have been honored (allowing scheduler
    // slop below the nominal 30ms, but not an instant bail).
    EXPECT_GE(waited, milliseconds(20));
  });
  other.join();
  mu.Unlock();
  std::thread acquirer([&] {
    EXPECT_TRUE(mu.TryLockFor(milliseconds(1000)));
    mu.Unlock();
  });
  acquirer.join();
}

TEST(SharedMutexTest, ManyConcurrentReaders) {
  SharedMutex mu;
  // All readers must be inside the lock at once: each waits until every
  // other has arrived while still holding the shared lock.
  constexpr int kReaders = 4;
  std::atomic<int> inside{0};
  std::vector<std::thread> pool;
  for (int t = 0; t < kReaders; ++t) {
    pool.emplace_back([&] {
      ReaderMutexLock lock(mu);
      inside.fetch_add(1);
      while (inside.load() < kReaders) std::this_thread::yield();
    });
  }
  for (std::thread& th : pool) th.join();
  EXPECT_EQ(inside.load(), kReaders);
}

TEST(SharedMutexTest, WriterExcludesReadersAndViceVersa) {
  SharedMutex mu;
  mu.Lock();  // exclusive
  std::thread reader([&] {
    EXPECT_FALSE(mu.TryLockShared());
    EXPECT_FALSE(mu.TryLockSharedFor(milliseconds(10)));
    EXPECT_FALSE(mu.TryLockFor(milliseconds(0)));
  });
  reader.join();
  mu.Unlock();

  mu.LockShared();
  std::thread writer([&] {
    EXPECT_FALSE(mu.TryLock());
    EXPECT_FALSE(mu.TryLockFor(milliseconds(10)));
    // A second shared acquisition is admitted alongside the first.
    EXPECT_TRUE(mu.TryLockShared());
    mu.UnlockShared();
    EXPECT_TRUE(mu.TryLockSharedFor(milliseconds(10)));
    mu.UnlockShared();
  });
  writer.join();
  mu.UnlockShared();

  std::thread now_free([&] {
    EXPECT_TRUE(mu.TryLockFor(milliseconds(100)));
    mu.Unlock();
  });
  now_free.join();
}

TEST(SharedMutexTest, SharedDeadlineHonoredUnderWriter) {
  SharedMutex mu;
  mu.Lock();
  std::thread reader([&] {
    auto start = std::chrono::steady_clock::now();
    EXPECT_FALSE(mu.TryLockSharedFor(milliseconds(30)));
    EXPECT_GE(std::chrono::steady_clock::now() - start, milliseconds(20));
  });
  reader.join();
  mu.Unlock();
}

TEST(SharedMutexTest, GuardsReleaseOnScopeExit) {
  SharedMutex mu;
  {
    WriterMutexLock lock(mu);
    std::thread t([&] { EXPECT_FALSE(mu.TryLockShared()); });
    t.join();
  }
  {
    ReaderMutexLock lock(mu);
    std::thread t([&] { EXPECT_FALSE(mu.TryLock()); });
    t.join();
  }
  // Both guards gone: exclusive acquisition succeeds immediately.
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(SharedMutexTest, WriterSeesSumOfReaderWrites) {
  // Readers (shared) observe, one writer (exclusive) mutates: the
  // final value must reflect every exclusive increment exactly once.
  SharedMutex mu;
  int value = 0;
  constexpr int kWrites = 500;
  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (int i = 0; i < kWrites; ++i) {
      WriterMutexLock lock(mu);
      ++value;
    }
    done.store(true);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      int last = 0;
      while (!done.load()) {
        ReaderMutexLock lock(mu);
        // Monotone under the lock: a reader never sees the count move
        // backwards.
        EXPECT_LE(last, value);
        last = value;
      }
    });
  }
  writer.join();
  for (std::thread& th : readers) th.join();
  EXPECT_EQ(value, kWrites);
}

}  // namespace
}  // namespace trinit
