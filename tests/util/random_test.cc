#include "util/random.h"

#include <gtest/gtest.h>

#include <map>

namespace trinit {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(17), b(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) {
    if (a.Next() != b.Next()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(7), 7u);
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(11);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  double rate = static_cast<double>(hits) / n;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(ZipfTest, UniformWhenExponentZero) {
  Rng rng(23);
  Rng::ZipfTable table(4, 0.0);
  std::map<size_t, int> counts;
  const int n = 40000;
  for (int i = 0; i < n; ++i) counts[table.Sample(rng)]++;
  for (const auto& [rank, c] : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.25, 0.02) << "rank " << rank;
  }
}

TEST(ZipfTest, SkewPrefersLowRanks) {
  Rng rng(29);
  Rng::ZipfTable table(100, 1.2);
  std::map<size_t, int> counts;
  for (int i = 0; i < 20000; ++i) counts[table.Sample(rng)]++;
  EXPECT_GT(counts[0], counts[50] * 5);
  for (const auto& [rank, c] : counts) {
    EXPECT_LT(rank, 100u);
    EXPECT_GT(c, 0);
  }
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

}  // namespace
}  // namespace trinit
