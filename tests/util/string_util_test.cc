#include "util/string_util.h"

#include <gtest/gtest.h>

namespace trinit {
namespace {

TEST(SplitTest, BasicAndEdgeCases) {
  EXPECT_EQ(Split("a\tb\tc", '\t'), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", '\t'), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a\t\tb", '\t'), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("\ta", '\t'), (std::vector<std::string>{"", "a"}));
  EXPECT_EQ(Split("a\t", '\t'), (std::vector<std::string>{"a", ""}));
}

TEST(SplitWhitespaceTest, CollapsesRuns) {
  EXPECT_EQ(SplitWhitespace("  a  b\tc\n"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
  EXPECT_TRUE(SplitWhitespace("").empty());
}

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(TrimTest, RemovesEdgesOnly) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t\n"), "");
  EXPECT_EQ(Trim("abc"), "abc");
}

TEST(ToLowerTest, AsciiOnly) {
  EXPECT_EQ(ToLower("AlbertEinstein"), "alberteinstein");
  EXPECT_EQ(ToLower("a-B_c9"), "a-b_c9");
}

TEST(PrefixSuffixTest, Basic) {
  EXPECT_TRUE(StartsWith("bornIn", "born"));
  EXPECT_FALSE(StartsWith("born", "bornIn"));
  EXPECT_TRUE(EndsWith("hasStudent", "Student"));
  EXPECT_FALSE(EndsWith("x", "xx"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(IsDigitsTest, Basic) {
  EXPECT_TRUE(IsDigits("0123"));
  EXPECT_FALSE(IsDigits(""));
  EXPECT_FALSE(IsDigits("12a"));
  EXPECT_FALSE(IsDigits("-1"));
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(0.775, 3), "0.775");
  EXPECT_EQ(FormatDouble(0.5, 1), "0.5");
  EXPECT_EQ(FormatDouble(1.0, 2), "1.00");
}

TEST(WithThousandsTest, GroupsDigits) {
  EXPECT_EQ(WithThousands(0), "0");
  EXPECT_EQ(WithThousands(999), "999");
  EXPECT_EQ(WithThousands(1000), "1,000");
  EXPECT_EQ(WithThousands(440000000), "440,000,000");
  EXPECT_EQ(WithThousands(-1234567), "-1,234,567");
}

}  // namespace
}  // namespace trinit
