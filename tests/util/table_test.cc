#include "util/table.h"

#include <gtest/gtest.h>

namespace trinit {
namespace {

TEST(AsciiTableTest, RendersAlignedColumns) {
  AsciiTable t({"System", "NDCG@5"});
  t.AddRow({"TriniT", "0.775"});
  t.AddRow({"Baseline", "0.419"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("| System   | NDCG@5 |"), std::string::npos) << s;
  EXPECT_NE(s.find("| TriniT   | 0.775  |"), std::string::npos) << s;
  EXPECT_NE(s.find("| Baseline | 0.419  |"), std::string::npos) << s;
}

TEST(AsciiTableTest, WidensForLongCells) {
  AsciiTable t({"a"});
  t.AddRow({"a-very-long-cell"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("a-very-long-cell"), std::string::npos);
}

TEST(AsciiTableTest, SeparatorRendersRule) {
  AsciiTable t({"x"});
  t.AddRow({"1"});
  t.AddSeparator();
  t.AddRow({"2"});
  std::string s = t.ToString();
  // Header rule + top + bottom + explicit separator = 5 rules total.
  size_t rules = 0;
  for (size_t pos = 0; (pos = s.find("+--", pos)) != std::string::npos; ++pos) {
    ++rules;
  }
  EXPECT_EQ(rules, 4u) << s;
}

TEST(AsciiTableTest, RowsWiderThanHeaderAreKept) {
  AsciiTable t({"only"});
  t.AddRow({"a", "b", "c"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("| a"), std::string::npos);
  EXPECT_NE(s.find("| c"), std::string::npos);
}

TEST(AsciiTableTest, EmptyTableStillRendersHeader) {
  AsciiTable t({"h1", "h2"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("h1"), std::string::npos);
  EXPECT_NE(s.find("h2"), std::string::npos);
}

}  // namespace
}  // namespace trinit
