// Tests for the planning layer: selectivity estimates from index
// metadata, the greedy connected cost order, pairwise join-key
// signatures, and the structural plan cache.

#include "plan/planner.h"

#include <gtest/gtest.h>

#include <thread>

#include "query/parser.h"
#include "testing/paper_world.h"

namespace trinit::plan {
namespace {

query::Query Parse(const xkg::Xkg& xkg, const char* text) {
  auto r = query::Parser::Parse(text, &xkg.dict());
  EXPECT_TRUE(r.ok()) << r.status();
  return std::move(r).value();
}

class PlannerTest : public ::testing::Test {
 protected:
  PlannerTest() : xkg_(testing::BuildPaperXkg()) {}

  std::shared_ptr<const JoinPlan> Compile(const char* text) {
    query::Query q = Parse(xkg_, text);
    query::VarTable vars(q);
    return Planner::Compile(q, vars, xkg_);
  }

  xkg::Xkg xkg_;
};

TEST_F(PlannerTest, EstimatesComeFromIndexMetadata) {
  auto plan = Compile("?x bornIn Ulm ; ?x ?p ?o");
  ASSERT_EQ(plan->estimates.size(), 2u);
  // Exactly one bornIn triple with object Ulm in the paper KG.
  EXPECT_DOUBLE_EQ(plan->estimates[0].cardinality, 1.0);
  EXPECT_TRUE(plan->estimates[0].exact);
  // The second pattern is a full wildcard: every triple matches.
  EXPECT_DOUBLE_EQ(plan->estimates[1].cardinality,
                   static_cast<double>(xkg_.store().size()));
  EXPECT_GT(plan->estimates[1].mass, plan->estimates[0].mass);
}

TEST_F(PlannerTest, UnresolvableConstantEstimatesZero) {
  auto plan = Compile("?x bornIn Atlantis");
  ASSERT_EQ(plan->estimates.size(), 1u);
  EXPECT_DOUBLE_EQ(plan->estimates[0].cardinality, 0.0);
}

TEST_F(PlannerTest, TokenSlotDegradesToInexactEstimate) {
  auto plan = Compile("?x 'won nobel for' ?y");
  ASSERT_EQ(plan->estimates.size(), 1u);
  EXPECT_FALSE(plan->estimates[0].exact);
}

TEST_F(PlannerTest, SelectiveFirstConnectedOrder) {
  // Parser order: the wide wildcard first, the selective pattern last.
  auto plan =
      Compile("SELECT ?x WHERE ?c ?p ?o ; ?x bornIn ?c ; ?c locatedIn Germany");
  ASSERT_EQ(plan->order.size(), 3u);
  // The two 1-match patterns lead (bornIn first: equal cost, earlier
  // index); the full wildcard goes last despite being written first.
  EXPECT_EQ(plan->order[0], 1u);
  EXPECT_EQ(plan->order[1], 2u);
  EXPECT_EQ(plan->order.back(), 0u);
}

TEST_F(PlannerTest, ConnectivityBeatsRawSelectivity) {
  // Pattern 1 (bornOn, 1 match) is the cheapest remaining after the
  // leader, but shares no variable with it; pattern 2 does and wins the
  // second slot despite a larger estimate.
  auto plan = Compile(
      "SELECT ?x WHERE ?x bornIn Ulm ; ?y bornOn ?d ; ?x affiliation ?u");
  ASSERT_EQ(plan->order.size(), 3u);
  EXPECT_EQ(plan->order[0], 0u);
  EXPECT_EQ(plan->order[1], 2u);
  EXPECT_EQ(plan->order[2], 1u);
}

TEST_F(PlannerTest, EstimatesCarryPredicateFanOutStats) {
  auto plan = Compile("?x bornIn ?c");
  ASSERT_EQ(plan->estimates.size(), 1u);
  // One bornIn triple in the paper KG: one distinct subject and object.
  EXPECT_DOUBLE_EQ(plan->estimates[0].distinct_subjects, 1.0);
  EXPECT_DOUBLE_EQ(plan->estimates[0].distinct_objects, 1.0);
  // Variable predicate: no stats to attribute.
  auto wild = Compile("?x ?p ?o");
  EXPECT_DOUBLE_EQ(wild->estimates[0].distinct_subjects, 0.0);
}

TEST_F(PlannerTest, FanOutAwareCostRanksByJoinOutputNotInputSize) {
  // `fans`: 6 triples, all from one subject (fan-out 6 per binding).
  // `narrow`: 8 triples across 8 distinct subjects (fan-out 1). Input-
  // size ordering would pick `fans` right after the seed (6 < 8); the
  // fan-out-aware cost knows a bound ?x expects 6 rows through `fans`
  // but only 1 through `narrow`, and flips them.
  xkg::XkgBuilder b;
  b.AddKgFact("S1", "isSeed", "Seed");
  for (int i = 1; i <= 6; ++i) {
    b.AddKgFact("S1", "fans", "F" + std::to_string(i));
  }
  for (int i = 1; i <= 8; ++i) {
    b.AddKgFact("S" + std::to_string(i), "narrow",
                "N" + std::to_string(i));
  }
  auto built = b.Build();
  ASSERT_TRUE(built.ok());
  xkg::Xkg xkg = std::move(built).value();

  query::Query q = Parse(
      xkg, "SELECT ?x WHERE ?x fans ?a ; ?x narrow ?b ; ?x isSeed Seed");
  query::VarTable vars(q);
  auto plan = Planner::Compile(q, vars, xkg);
  ASSERT_EQ(plan->order.size(), 3u);
  EXPECT_EQ(plan->order[0], 2u);  // the 1-match seed leads
  EXPECT_EQ(plan->order[1], 1u);  // narrow: 8/8 = 1 expected row
  EXPECT_EQ(plan->order[2], 0u);  // fans: 6/1 = 6 expected rows
  EXPECT_DOUBLE_EQ(plan->estimates[0].distinct_subjects, 1.0);
  EXPECT_DOUBLE_EQ(plan->estimates[1].distinct_subjects, 8.0);
}

TEST_F(PlannerTest, JoinKeysAreSharedVarsByExecPosition) {
  auto plan = Compile("SELECT ?x WHERE ?x bornIn ?c ; ?c locatedIn Germany");
  ASSERT_EQ(plan->order.size(), 2u);
  // Whatever the exec order, the pair signature is the shared ?c.
  query::Query q = Parse(xkg_, "SELECT ?x WHERE ?x bornIn ?c ; ?c locatedIn Germany");
  query::VarTable vars(q);
  query::VarId c = vars.Require("c");
  ASSERT_EQ(plan->JoinKey(0, 1).size(), 1u);
  EXPECT_EQ(plan->JoinKey(0, 1)[0], c);
  EXPECT_EQ(plan->JoinKey(1, 0), plan->JoinKey(0, 1));
  ASSERT_EQ(plan->probe_preference[0].size(), 1u);
  EXPECT_EQ(plan->probe_preference[0][0], 1u);
}

TEST_F(PlannerTest, CrossProductPairHasEmptyKey) {
  auto plan = Compile("SELECT ?x WHERE ?x bornIn Ulm ; ?y bornOn ?d");
  EXPECT_TRUE(plan->JoinKey(0, 1).empty());
  EXPECT_TRUE(plan->probe_preference[0].empty());
  EXPECT_TRUE(plan->probe_preference[1].empty());
}

TEST_F(PlannerTest, StructureIgnoresEntityButNotPredicateIdentity) {
  query::Query a = Parse(xkg_, "?x bornIn Ulm");
  query::Query b = Parse(xkg_, "?x bornIn Germany");
  query::Query c = Parse(xkg_, "?x bornIn ?y");
  query::Query d = Parse(xkg_, "?x locatedIn Ulm");
  query::VarTable va(a), vb(b), vc(c), vd(d);
  // Same shapes + predicate, different object entity: shared.
  EXPECT_EQ(JoinPlan::StructureOf(a, va), JoinPlan::StructureOf(b, vb));
  // Different shape: distinct.
  EXPECT_NE(JoinPlan::StructureOf(a, va), JoinPlan::StructureOf(c, vc));
  // Same shape, different predicate: distinct (predicates dominate
  // cardinality, so unrelated queries must not share a plan).
  EXPECT_NE(JoinPlan::StructureOf(a, va), JoinPlan::StructureOf(d, vd));
}

TEST_F(PlannerTest, CacheReusesStructurallyIdenticalVariants) {
  PlanCache cache;
  query::Query a = Parse(xkg_, "?x bornIn Ulm");
  query::Query b = Parse(xkg_, "?x bornIn Germany");
  query::VarTable va(a), vb(b);
  auto p1 = cache.Get(a, va, xkg_);
  auto p2 = cache.Get(b, vb, xkg_);
  EXPECT_EQ(p1.get(), p2.get());  // same plan object
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST_F(PlannerTest, CacheIsThreadSafe) {
  PlanCache cache;
  query::Query q =
      Parse(xkg_, "SELECT ?x WHERE ?x bornIn ?c ; ?c locatedIn Germany");
  query::VarTable vars(q);
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<const JoinPlan>> got(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t]() { got[t] = cache.Get(q, vars, xkg_); });
  }
  for (std::thread& t : threads) t.join();
  for (const auto& plan : got) {
    ASSERT_NE(plan, nullptr);
    EXPECT_EQ(plan->structure, got[0]->structure);
  }
  EXPECT_EQ(cache.size(), 1u);
  PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, 8u);
}

}  // namespace
}  // namespace trinit::plan
