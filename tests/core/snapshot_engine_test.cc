// Engine-level snapshot behavior: Trinit::Save -> Trinit::Open(path)
// yields an engine whose answers are byte-identical to the source
// engine AND to a TSV-rebuilt engine, with identical pull/probe/decode
// work counters, across randomized synthetic worlds; the restored
// serving cache continues the saved generation; and error paths stay
// typed.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "core/trinit.h"
#include "synth/kg_generator.h"
#include "testing/paper_world.h"
#include "xkg/tsv_io.h"

namespace trinit::core {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// Byte-comparable rendering of a ranked answer list (projection values
/// + nano-rounded scores), same equality the benches gate on.
std::string AnswerBytes(const topk::TopKResult& result) {
  std::ostringstream os;
  for (const auto& ans : result.answers) {
    for (size_t i = 0; i < result.projection.size(); ++i) {
      os << ans.binding.Get(static_cast<query::VarId>(i)) << ',';
    }
    os << std::llround(ans.score * 1e9) << ';';
  }
  return os.str();
}

/// The work counters that must be identical between a snapshot-loaded
/// and a TSV-built engine for the same request.
std::string WorkCounters(const topk::TopKResult::RunStats& s) {
  std::ostringstream os;
  os << s.items_pulled << '/' << s.items_decoded << '/' << s.items_skipped
     << '/' << s.combinations_tried << '/' << s.partition_probes << '/'
     << s.query_variants_evaluated << '/' << s.alternatives_opened;
  return os.str();
}

/// Runs `text` uncached-style (fresh request each time; answer cache is
/// on but the comparison reads per-request stats of the *first* run).
std::pair<std::string, std::string> RunOnce(const Trinit& engine,
                                            const std::string& text) {
  auto response = engine.Execute(QueryRequest::Text(text, 5));
  EXPECT_TRUE(response.ok()) << response.status() << " for " << text;
  if (!response.ok()) return {};
  return {AnswerBytes(response->result()), WorkCounters(response->stats)};
}

TEST(SnapshotEngineTest, SaveOpenIsByteIdenticalOnPaperWorld) {
  auto source = Trinit::Open(testing::BuildPaperXkg());
  ASSERT_TRUE(source.ok());
  ASSERT_TRUE(source->AddManualRules(testing::kPaperRulesText).ok());

  const std::vector<std::string> queries = {
      "?x bornIn Germany",
      "AlbertEinstein hasAdvisor ?x",
      "SELECT ?x WHERE ?x affiliation ?u ; ?u 'housed in' ?p",
      "?x 'won nobel for' ?y",
  };
  // Warm some lazy shapes so the snapshot carries index state.
  for (const std::string& q : queries) (void)RunOnce(*source, q);

  const std::string path = TempPath("engine_paper.trinit");
  ASSERT_TRUE(source->Save(path).ok());
  storage::LoadReport report;
  auto loaded = Trinit::Open(path, {}, &report);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(report.index_rebuilds, 0u);
  EXPECT_EQ(loaded->rules().size(), source->rules().size());
  EXPECT_GT(report.score_shapes_restored, 0u);
  const size_t shapes_at_save = source->xkg().store().score_shapes_built();
  EXPECT_EQ(loaded->xkg().store().score_shapes_built(), shapes_at_save);

  for (const std::string& q : queries) {
    // `source` serves the warmed mix from its answer cache while the
    // freshly loaded engine runs it for real — the bytes must match
    // regardless (work-counter identity between two *fresh* engines is
    // the property test below).
    auto [src_bytes, src_work] = RunOnce(*source, q);
    auto [snap_bytes, snap_work] = RunOnce(*loaded, q);
    EXPECT_EQ(snap_bytes, src_bytes) << q;
    (void)src_work;
    (void)snap_work;
  }
  // No shape was rebuilt to answer the warmed mix.
  EXPECT_EQ(loaded->xkg().store().score_shapes_built(), shapes_at_save);
}

TEST(SnapshotEngineTest, PropertySnapshotEqualsTsvBuiltAcrossWorlds) {
  for (uint64_t seed : {11u, 23u, 47u}) {
    synth::WorldSpec spec;
    spec.seed = seed;
    spec.num_persons = 40 + seed % 13;
    spec.num_universities = 6;
    spec.num_institutes = 4;
    spec.num_cities = 8;
    spec.num_countries = 3;
    spec.num_prizes = 3;
    spec.num_fields = 4;
    spec.predicates = synth::WorldSpec::DefaultPredicates();
    synth::World world = synth::KgGenerator::Generate(spec);

    auto source = Trinit::FromWorld(world);
    ASSERT_TRUE(source.ok()) << source.status();

    // TSV cold-start path: dump + reload + re-mine. (A TSV reload
    // re-interns terms in dump order, so its ids differ from the
    // producer's — the snapshot must therefore be taken of the
    // TSV-built engine itself for an id-level byte comparison.)
    const std::string tsv = TempPath("world_" + std::to_string(seed) +
                                     ".tsv");
    ASSERT_TRUE(xkg::XkgTsv::Save(source->xkg(), tsv).ok());
    auto tsv_xkg = xkg::XkgTsv::Load(tsv);
    ASSERT_TRUE(tsv_xkg.ok()) << tsv_xkg.status();
    auto tsv_engine = Trinit::Open(std::move(tsv_xkg).value());
    ASSERT_TRUE(tsv_engine.ok());

    // A mix of shapes over this world's entities: single patterns,
    // joins, soft matches, relax-rescued constants.
    const auto& unis = world.OfClass(synth::EntityClass::kUniversity);
    const auto& cities = world.OfClass(synth::EntityClass::kCity);
    ASSERT_GE(unis.size(), 2u);
    ASSERT_GE(cities.size(), 2u);
    const std::vector<std::string> queries = {
        "?x bornIn " + world.entities[cities[0]].name,
        "?x affiliation " + world.entities[unis[0]].name,
        "SELECT ?x WHERE ?x affiliation ?u ; ?u campusIn " +
            world.entities[cities[1]].name,
        "SELECT ?a ?b WHERE ?a hasAdvisor ?b ; ?b affiliation " +
            world.entities[unis[1]].name,
        "?x wonPrize ?p",
    };
    // Ground truth: the TSV-built engine's answers and work counters
    // (first, uncached run of each query).
    std::vector<std::pair<std::string, std::string>> expected;
    expected.reserve(queries.size());
    for (const std::string& q : queries) {
      expected.push_back(RunOnce(*tsv_engine, q));
    }

    // Snapshot cold-start paths: save the TSV-built engine once per
    // codec, open each file through every load mode / verification
    // combination — answers AND pull/probe/decode work counters must be
    // byte-identical to the TSV build in all of them.
    struct Combo {
      const char* label;
      storage::SectionCodec codec;
      storage::LoadMode mode;
      rdf::SnapshotValidation verify;
    };
    const Combo combos[] = {
        {"raw/copy", storage::SectionCodec::kRaw, storage::LoadMode::kCopy,
         rdf::SnapshotValidation::kFull},
        {"raw/mmap", storage::SectionCodec::kRaw, storage::LoadMode::kMapped,
         rdf::SnapshotValidation::kFull},
        {"raw/mmap-trusted", storage::SectionCodec::kRaw,
         storage::LoadMode::kMapped, rdf::SnapshotValidation::kTrusted},
        {"varint/copy", storage::SectionCodec::kVarintDelta,
         storage::LoadMode::kCopy, rdf::SnapshotValidation::kFull},
        {"varint/mmap", storage::SectionCodec::kVarintDelta,
         storage::LoadMode::kMapped, rdf::SnapshotValidation::kFull},
        {"varint/mmap-trusted", storage::SectionCodec::kVarintDelta,
         storage::LoadMode::kMapped, rdf::SnapshotValidation::kTrusted},
    };
    for (const Combo& combo : combos) {
      SCOPED_TRACE(std::string("seed ") + std::to_string(seed) + " " +
                   combo.label);
      const std::string snap =
          TempPath("world_" + std::to_string(seed) + "_" +
                   (combo.codec == storage::SectionCodec::kRaw ? "raw"
                                                               : "varint") +
                   ".trinit");
      ASSERT_TRUE(storage::SnapshotWriter::Write(
                      tsv_engine->xkg(), tsv_engine->rules(),
                      tsv_engine->serving_cache().generation(), snap,
                      {combo.codec, storage::kSnapshotVersion})
                      .ok());
      TrinitOptions options;
      options.snapshot_read = {combo.mode, combo.verify};
      storage::LoadReport report;
      auto snap_engine = Trinit::Open(snap, options, &report);
      ASSERT_TRUE(snap_engine.ok()) << snap_engine.status();
      EXPECT_EQ(report.index_rebuilds, 0u);
      EXPECT_EQ(snap_engine->rules().size(), tsv_engine->rules().size());

      for (size_t i = 0; i < queries.size(); ++i) {
        auto [snap_bytes, snap_work] = RunOnce(*snap_engine, queries[i]);
        EXPECT_EQ(snap_bytes, expected[i].first) << queries[i];
        EXPECT_EQ(snap_work, expected[i].second) << queries[i];
      }
      // A mutation after a mapped load copies the views into owned
      // memory (copy-on-write) and keeps serving correct answers.
      ASSERT_TRUE(snap_engine
                      ->ExtendKg("ZZTestPerson bornIn " +
                                 world.entities[cities[0]].name)
                      .ok());
      auto after = snap_engine->Execute(
          QueryRequest::Text(queries[0], 50));
      ASSERT_TRUE(after.ok()) << after.status();
    }
  }
}

TEST(SnapshotEngineTest, GenerationContinuesAcrossSaveLoad) {
  auto engine = Trinit::Open(testing::BuildPaperXkg());
  ASSERT_TRUE(engine.ok());
  const uint64_t gen0 = engine->serving_cache().generation();
  ASSERT_TRUE(engine->ExtendKg("ElsaEinstein bornIn Ulm").ok());
  ASSERT_TRUE(
      engine->AddManualRules("r: ?x hasAdvisor ?y => ?y hasStudent ?x @ 1")
          .ok());
  const uint64_t gen = engine->serving_cache().generation();
  EXPECT_GT(gen, gen0);

  const std::string path = TempPath("generation.trinit");
  ASSERT_TRUE(engine->Save(path).ok());
  auto loaded = Trinit::Open(path);
  ASSERT_TRUE(loaded.ok());
  // The loaded engine continues the saved coherent sequence instead of
  // restarting at 0 — and keeps moving on further mutations.
  EXPECT_EQ(loaded->serving_cache().generation(), gen);
  ASSERT_TRUE(loaded->ExtendKg("MaxBorn bornIn Ulm").ok());
  EXPECT_GT(loaded->serving_cache().generation(), gen);
}

TEST(SnapshotEngineTest, MutationsKeepWorkingAfterLoad) {
  auto engine = Trinit::Open(testing::BuildPaperXkg());
  ASSERT_TRUE(engine.ok());
  const std::string path = TempPath("mutate.trinit");
  ASSERT_TRUE(engine->Save(path).ok());
  auto loaded = Trinit::Open(path);
  ASSERT_TRUE(loaded.ok());

  auto before = loaded->Query("?x bornIn Ulm", 5);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(loaded->ExtendKg("ElsaEinstein bornIn Ulm").ok());
  auto after = loaded->Query("?x bornIn Ulm", 5);
  ASSERT_TRUE(after.ok());
  EXPECT_GT(after->answers.size(), before->answers.size());
}

TEST(SnapshotEngineTest, OpenPathErrorsAreTyped) {
  auto missing = Trinit::Open(TempPath("missing_engine.trinit"));
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace trinit::core
