// Engine-level serving-cache behavior: repeated requests are served
// from the answer cache without touching the rank-join, mutations bump
// the generation so nothing stale is ever served, truncated runs are
// never stored, and a concurrent mixed workload keeps the counters
// reconciled and the answers identical to uncached execution.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/trinit.h"
#include "testing/paper_world.h"

namespace trinit::core {
namespace {

std::vector<std::string> Rendered(const Trinit& engine,
                                  const topk::TopKResult& result) {
  std::vector<std::string> out;
  for (size_t i = 0; i < result.answers.size(); ++i) {
    std::ostringstream os;
    os << engine.RenderAnswer(result, i) << " @ "
       << std::llround(result.answers[i].score * 1e9);
    out.push_back(os.str());
  }
  return out;
}

Trinit OpenPaperEngine(TrinitOptions options = {}) {
  auto engine = Trinit::Open(testing::BuildPaperXkg(), options);
  EXPECT_TRUE(engine.ok()) << engine.status();
  return std::move(engine).value();
}

TEST(ServingTest, RepeatedRequestServedFromAnswerCacheWithZeroWork) {
  Trinit engine = OpenPaperEngine();
  QueryRequest request = QueryRequest::Text("?x bornIn Ulm", 5);

  auto cold = engine.Execute(request);
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold->serving.answer_hit);
  EXPECT_GT(cold->stats.items_pulled, 0u);

  auto warm = engine.Execute(request);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->serving.answer_hit);
  // The join never ran: zero pulls, zero probes, zero planning.
  EXPECT_EQ(warm->stats.items_pulled, 0u);
  EXPECT_EQ(warm->stats.combinations_tried, 0u);
  EXPECT_EQ(warm->stats.plan_cache_misses, 0u);
  // Same ranked answers, byte for byte.
  EXPECT_EQ(Rendered(engine, warm->result()), Rendered(engine, cold->result()));

  const serve::ServingCache::Counters c = engine.serving_cache().counters();
  EXPECT_EQ(c.answer_hits, 1u);
  EXPECT_EQ(c.answer_misses, 1u);

  // Cumulative counters are registry-sourced (PR 10): a handful of
  // relaxed atomic reads, filled on *every* response, traced or not.
  EXPECT_EQ(warm->serving.answer_hits, 1u);
  EXPECT_EQ(warm->serving.answer_misses, 1u);
  QueryRequest traced = request;
  traced.trace = true;
  auto traced_warm = engine.Execute(traced);
  ASSERT_TRUE(traced_warm.ok());
  EXPECT_TRUE(traced_warm->serving.answer_hit);
  EXPECT_EQ(traced_warm->serving.answer_hits, 2u);
  EXPECT_EQ(traced_warm->serving.answer_misses, 1u);
}

TEST(ServingTest, CanonicalKeySharesAcrossSpellings) {
  Trinit engine = OpenPaperEngine();
  auto a = engine.Execute(QueryRequest::Text("?x bornIn Ulm", 5));
  ASSERT_TRUE(a.ok());
  // Same query with an explicit (redundant) projection and different
  // whitespace: canonicalization must land on the same key.
  auto b = engine.Execute(
      QueryRequest::Text("SELECT ?x   WHERE ?x bornIn Ulm", 5));
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(b->serving.answer_hit);
  EXPECT_EQ(Rendered(engine, b->result()), Rendered(engine, a->result()));
}

TEST(ServingTest, DifferentKOrConfigMissesTheCache) {
  Trinit engine = OpenPaperEngine();
  ASSERT_TRUE(engine.Execute(QueryRequest::Text("?x bornIn Ulm", 5)).ok());

  auto other_k = engine.Execute(QueryRequest::Text("?x bornIn Ulm", 3));
  ASSERT_TRUE(other_k.ok());
  EXPECT_FALSE(other_k->serving.answer_hit);

  QueryRequest no_relax = QueryRequest::Text("?x bornIn Ulm", 5);
  no_relax.enable_relaxation = false;
  auto r = engine.Execute(no_relax);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->serving.answer_hit);
}

TEST(ServingTest, ExtendKgInvalidatesPlanAndAnswerEntries) {
  Trinit engine = OpenPaperEngine();
  QueryRequest request = QueryRequest::Text("?x bornIn Ulm", 5);

  auto before = engine.Execute(request);
  ASSERT_TRUE(before.ok());
  const uint64_t gen_before = before->serving.generation;
  ASSERT_TRUE(engine.Execute(request)->serving.answer_hit);  // warm

  ASSERT_TRUE(engine.ExtendKg("ElsaEinstein bornIn Ulm").ok());

  auto after = engine.Execute(request);
  ASSERT_TRUE(after.ok());
  // No stale answer: the mutation bumped the generation, the cached
  // entry stopped matching, and the fresh run sees the new fact.
  EXPECT_FALSE(after->serving.answer_hit);
  EXPECT_GT(after->serving.generation, gen_before);
  EXPECT_GT(after->result().answers.size(), before->result().answers.size());

  // The old plan entries are stale too: the first post-mutation run
  // recompiles (invalidated or fresh-miss, never a stale hit), and the
  // plan cache's generation moved with the engine's.
  auto warm_again = engine.Execute(request);
  ASSERT_TRUE(warm_again.ok());
  EXPECT_TRUE(warm_again->serving.answer_hit);
  EXPECT_EQ(Rendered(engine, warm_again->result()),
            Rendered(engine, after->result()));
}

TEST(ServingTest, AddManualRulesInvalidatesAnswers) {
  Trinit engine = OpenPaperEngine();
  QueryRequest request = QueryRequest::Text("AlbertEinstein hasAdvisor ?x", 5);
  auto before = engine.Execute(request);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(engine.Execute(request)->serving.answer_hit);

  ASSERT_TRUE(engine
                  .AddManualRules(
                      "rule2: ?x hasAdvisor ?y => ?y hasStudent ?x @ 1.0")
                  .ok());
  auto after = engine.Execute(request);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->serving.answer_hit);
  // The new inversion rule rescues the empty advisor query through
  // hasStudent — the post-mutation run must see it.
  EXPECT_GT(after->result().answers.size(), before->result().answers.size());
}

TEST(ServingTest, TruncatedRunsAreNeverCached) {
  Trinit engine = OpenPaperEngine();
  QueryRequest rushed = QueryRequest::Text("?x bornIn Ulm", 5);
  rushed.timeout_ms = 1e-6;  // expires before the first variant opens
  auto truncated = engine.Execute(rushed);
  ASSERT_TRUE(truncated.ok());
  ASSERT_TRUE(truncated->deadline_hit);
  EXPECT_FALSE(truncated->serving.answer_hit);

  // Same key (deadlines are not part of it), but nothing was stored:
  // the unhurried request must run and produce the full answer.
  QueryRequest unhurried = QueryRequest::Text("?x bornIn Ulm", 5);
  auto full = engine.Execute(unhurried);
  ASSERT_TRUE(full.ok());
  EXPECT_FALSE(full->serving.answer_hit);
  EXPECT_FALSE(full->result().answers.empty());

  // The complete run *is* cached — and serves the rushed request too.
  auto warm = engine.Execute(rushed);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->serving.answer_hit);
  EXPECT_EQ(Rendered(engine, warm->result()), Rendered(engine, full->result()));
}

TEST(ServingTest, DisabledServingCacheRestoresPerRequestExecution) {
  TrinitOptions options;
  options.serving.enabled = false;
  Trinit engine = OpenPaperEngine(options);
  QueryRequest request = QueryRequest::Text("?x bornIn Ulm", 5);
  ASSERT_TRUE(engine.Execute(request).ok());
  auto second = engine.Execute(request);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->serving.answer_hit);
  EXPECT_GT(second->stats.items_pulled, 0u);
  const serve::ServingCache::Counters c = engine.serving_cache().counters();
  EXPECT_EQ(c.answer_hits, 0u);
  EXPECT_EQ(c.answer_misses, 0u);
}

TEST(ServingTest, ConcurrentMixedWorkloadReconcilesAndMatchesUncached) {
  Trinit cached_engine = OpenPaperEngine();
  TrinitOptions uncached_options;
  uncached_options.serving.enabled = false;
  Trinit uncached_engine = OpenPaperEngine(uncached_options);

  const std::vector<std::string> repeated = {
      "?x bornIn Ulm",
      "SELECT ?x WHERE ?x bornIn ?c ; ?c locatedIn Germany",
      "?x affiliation ?u",
  };
  const std::vector<std::string> unique = {
      "AlbertEinstein bornIn ?x",
      "?x locatedIn Germany",
      "AlfredKleiner hasStudent ?x",
      "?x 'won nobel for' ?y",
      "SELECT ?x WHERE ?x affiliation ?u ; ?u 'housed in' ?p",
      "Ulm type ?t",
  };

  // Mixed hammer: every repeated query many times, every unique query
  // once, interleaved.
  std::vector<QueryRequest> batch;
  for (int round = 0; round < 8; ++round) {
    for (const std::string& text : repeated) {
      batch.push_back(QueryRequest::Text(text, 5));
    }
    if (round < static_cast<int>(unique.size())) {
      batch.push_back(QueryRequest::Text(unique[round], 5));
    }
  }

  std::vector<Result<QueryResponse>> responses =
      cached_engine.ExecuteBatch(batch, /*num_threads=*/8);
  ASSERT_EQ(responses.size(), batch.size());

  // Reference answers from the uncached engine, computed serially.
  std::map<std::string, std::vector<std::string>> reference;
  for (size_t i = 0; i < batch.size(); ++i) {
    if (reference.count(batch[i].text) != 0) continue;
    auto r = uncached_engine.Execute(batch[i]);
    ASSERT_TRUE(r.ok());
    reference[batch[i].text] = Rendered(uncached_engine, r->result());
  }

  size_t hits_observed = 0;
  for (size_t i = 0; i < responses.size(); ++i) {
    ASSERT_TRUE(responses[i].ok()) << batch[i].text;
    const QueryResponse& response = *responses[i];
    // Cached or not, the ranked answers equal uncached execution.
    EXPECT_EQ(Rendered(cached_engine, response.result()),
              reference[batch[i].text])
        << batch[i].text;
    if (response.serving.answer_hit) {
      ++hits_observed;
      EXPECT_EQ(response.stats.items_pulled, 0u);
      EXPECT_EQ(response.stats.combinations_tried, 0u);
    }
  }

  // Counter reconciliation: every request did exactly one lookup.
  const serve::ServingCache::Counters c =
      cached_engine.serving_cache().counters();
  EXPECT_EQ(c.answer_hits + c.answer_misses, batch.size());
  EXPECT_EQ(c.answer_hits, hits_observed);
  // Every distinct query missed at least once; entry count is bounded
  // by the distinct queries (racing duplicate stores refresh in place).
  const size_t distinct = reference.size();
  EXPECT_GE(c.answer_misses, distinct);
  EXPECT_LE(c.answer_entries, distinct);
  // The repeated queries dominated: most requests were cache hits.
  EXPECT_GE(c.answer_hits, batch.size() / 2);
}

}  // namespace
}  // namespace trinit::core
