// Tests for dynamic KG extension (core::Trinit::ExtendKg) and the
// XkgBuilder::FromXkg reseeding path behind it.

#include <gtest/gtest.h>

#include "core/trinit.h"
#include "testing/paper_world.h"
#include "xkg/xkg_builder.h"

namespace trinit::core {
namespace {

TEST(FromXkgTest, ReseedPreservesEverything) {
  xkg::Xkg original = testing::BuildPaperXkg();
  xkg::XkgBuilder builder = xkg::XkgBuilder::FromXkg(original);
  auto rebuilt = builder.Build();
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(rebuilt->store().size(), original.store().size());
  EXPECT_EQ(rebuilt->kg_triple_count(), original.kg_triple_count());
  EXPECT_EQ(rebuilt->extraction_triple_count(),
            original.extraction_triple_count());
  // Provenance carried over.
  const auto& dict = rebuilt->dict();
  rdf::TripleId id = rebuilt->store().Find(
      dict.Find(rdf::TermKind::kResource, "IAS"),
      dict.Find(rdf::TermKind::kToken, "housed in"),
      dict.Find(rdf::TermKind::kResource, "PrincetonUniversity"));
  ASSERT_NE(id, rdf::kInvalidTriple);
  EXPECT_EQ(rebuilt->ProvenanceFor(id).size(), 1u);
}

TEST(ExtendKgTest, NewFactsBecomeQueryable) {
  auto engine = Trinit::Open(testing::BuildPaperXkg());
  ASSERT_TRUE(engine.ok());
  auto before = engine->Query("MarieCurie bornIn ?x", 5);
  ASSERT_TRUE(before.ok());
  EXPECT_TRUE(before->answers.empty());

  ASSERT_TRUE(engine
                  ->ExtendKg("MarieCurie bornIn Warsaw\n"
                             "Warsaw locatedIn Poland\n")
                  .ok());
  auto after = engine->Query("MarieCurie bornIn ?x", 5);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after->answers.size(), 1u);
  EXPECT_EQ(engine->RenderAnswer(*after, 0), "?x = Warsaw");
}

TEST(ExtendKgTest, ExistingAnswersSurviveRebuild) {
  auto engine = Trinit::Open(testing::BuildPaperXkg());
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine->ExtendKg("MarieCurie bornIn Warsaw\n").ok());
  auto result = engine->Query("AlbertEinstein 'won nobel for' ?x", 5);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->answers.empty());
  EXPECT_EQ(engine->RenderAnswer(*result, 0),
            "?x = 'discovery of the photoelectric effect'");
}

TEST(ExtendKgTest, RulesStillFireAfterRebuild) {
  // The rebuild shifts dictionary ids; rules must be re-resolved.
  auto engine = Trinit::Open(testing::BuildPaperXkg());
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine->AddManualRules(testing::kPaperRulesText).ok());
  ASSERT_TRUE(engine->ExtendKg("MarieCurie bornIn Warsaw\n"
                               "Warsaw locatedIn Poland\n")
                  .ok());
  // User A's geo relaxation still works, now also for the new entity.
  auto einstein = engine->Query("?x bornIn Germany", 5);
  ASSERT_TRUE(einstein.ok());
  ASSERT_FALSE(einstein->answers.empty());
  EXPECT_EQ(engine->RenderAnswer(*einstein, 0), "?x = AlbertEinstein");
  auto curie = engine->Query("?x bornIn Poland", 5);
  ASSERT_TRUE(curie.ok());
  ASSERT_FALSE(curie->answers.empty());
  EXPECT_EQ(engine->RenderAnswer(*curie, 0), "?x = MarieCurie");
}

TEST(ExtendKgTest, TokenFactsAllowed) {
  auto engine = Trinit::Open(testing::BuildPaperXkg());
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(
      engine->ExtendKg("MarieCurie 'pioneered research on' 'radioactivity'\n")
          .ok());
  auto result = engine->Query("MarieCurie 'pioneered research on' ?x", 5);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->answers.size(), 1u);
  EXPECT_EQ(engine->RenderAnswer(*result, 0), "?x = 'radioactivity'");
}

TEST(ExtendKgTest, AutocompleteSeesNewVocabulary) {
  auto engine = Trinit::Open(testing::BuildPaperXkg());
  ASSERT_TRUE(engine.ok());
  EXPECT_TRUE(engine->autocomplete().Complete("Marie").empty());
  ASSERT_TRUE(engine->ExtendKg("MarieCurie bornIn Warsaw\n").ok());
  auto completions = engine->autocomplete().Complete("Marie");
  ASSERT_FALSE(completions.empty());
  EXPECT_EQ(completions[0].text, "MarieCurie");
}

TEST(ExtendKgTest, RejectsVariablesAndEmptyInput) {
  auto engine = Trinit::Open(testing::BuildPaperXkg());
  ASSERT_TRUE(engine.ok());
  EXPECT_FALSE(engine->ExtendKg("?x bornIn Warsaw\n").ok());
  EXPECT_FALSE(engine->ExtendKg("# only a comment\n").ok());
  EXPECT_FALSE(engine->ExtendKg("MalformedFactWithoutTriple\n").ok());
}

}  // namespace
}  // namespace trinit::core
