// Engine-level observability (PR 10): traced requests carry a span
// tree mirroring the uniform counter set, every response fills the
// registry-sourced cumulative serving counters, the slow-query log
// captures a deliberately-slow request with its full span tree, the
// metrics registry counts engine work exactly, and observation is
// consistent across every way of standing the same engine up
// (TSV-built, snapshot copy, mmap/trusted, sharded).

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "core/trinit.h"
#include "obs/exposition.h"
#include "testing/paper_world.h"

namespace trinit::core {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

Trinit OpenPaperEngine(TrinitOptions options = {}) {
  auto engine = Trinit::Open(testing::BuildPaperXkg(), options);
  EXPECT_TRUE(engine.ok()) << engine.status();
  EXPECT_TRUE(engine->AddManualRules(testing::kPaperRulesText).ok());
  return std::move(engine).value();
}

const std::vector<std::string>& PaperQueries() {
  static const std::vector<std::string> queries = {
      "?x bornIn Germany",
      "AlbertEinstein hasAdvisor ?x",
      "SELECT ?x WHERE ?x affiliation ?u ; ?u 'housed in' ?p",
  };
  return queries;
}

double CounterValue(const obs::MetricsSnapshot& snapshot,
                    const char* name) {
  const obs::MetricsSnapshot::Metric* m = snapshot.Find(name);
  EXPECT_NE(m, nullptr) << name;
  return m == nullptr ? 0.0 : m->value;
}

TEST(ObservabilityTest, TracedRequestCarriesSpanTree) {
  Trinit engine = OpenPaperEngine();
  QueryRequest request = QueryRequest::Text("?x bornIn Germany", 5);
  request.trace = true;
  auto response = engine.Execute(request);
  ASSERT_TRUE(response.ok());

  ASSERT_TRUE(response->span.has_value());
  const obs::TraceSpan& root = *response->span;
  EXPECT_EQ(root.name, "execute");
  EXPECT_DOUBLE_EQ(root.duration_ms, response->wall_ms);
  // One child per executed stage, in execution order.
  ASSERT_EQ(root.children.size(), 3u);
  EXPECT_EQ(root.children[0].name, "parse");
  EXPECT_EQ(root.children[1].name, "cache");
  EXPECT_EQ(root.children[2].name, "process");
  EXPECT_GE(root.children[2].start_ms, root.children[1].start_ms);

  // The root's counters are exactly the flat trace counters (the span
  // is the structured superset of `counters`, never a divergent copy).
  ASSERT_EQ(root.counters.size(), response->counters.size());
  for (size_t i = 0; i < root.counters.size(); ++i) {
    EXPECT_EQ(root.counters[i].first, response->counters[i].name);
    EXPECT_EQ(root.counters[i].second, response->counters[i].value);
  }

  // trace_json: valid-looking JSON with the schema's keys.
  const std::string json = response->trace_json();
  EXPECT_EQ(json.find("{\"name\":\"execute\""), 0u);
  EXPECT_NE(json.find("\"children\":[{\"name\":\"parse\""),
            std::string::npos);
  EXPECT_NE(json.find("[\"items_pulled\","), std::string::npos);

  // Untraced requests carry no span and an empty trace_json.
  auto untraced = engine.Execute(QueryRequest::Text("?x bornIn Ulm", 5));
  ASSERT_TRUE(untraced.ok());
  EXPECT_FALSE(untraced->span.has_value());
  EXPECT_EQ(untraced->trace_json(), "{}");
}

TEST(ObservabilityTest, EveryResponseFillsCumulativeServingCounters) {
  Trinit engine = OpenPaperEngine();
  const QueryRequest request = QueryRequest::Text("?x bornIn Ulm", 5);
  ASSERT_TRUE(engine.Execute(request).ok());          // cold miss
  auto warm = engine.Execute(request);                // untraced hit
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->serving.answer_hit);

  // The registry-sourced cumulative fields agree with the exact
  // lock-sweeping cache snapshot — on an *untraced* response.
  const serve::ServingCache::Counters c = engine.serving_cache().counters();
  EXPECT_EQ(warm->serving.answer_hits, c.answer_hits);
  EXPECT_EQ(warm->serving.answer_misses, c.answer_misses);
  EXPECT_EQ(warm->serving.answer_evictions, c.answer_evictions);
  EXPECT_EQ(warm->serving.plan_hits, c.plan_hits);
  EXPECT_EQ(warm->serving.plan_misses, c.plan_misses);
  EXPECT_EQ(warm->serving.plan_invalidated, c.plan_invalidated);
  EXPECT_EQ(warm->serving.answer_hits, 1u);
  EXPECT_EQ(warm->serving.answer_misses, 1u);
}

TEST(ObservabilityTest, MetricsOffLeavesZeroObservation) {
  TrinitOptions options;
  options.obs.metrics = false;
  Trinit engine = OpenPaperEngine(options);
  const QueryRequest request = QueryRequest::Text("?x bornIn Ulm", 5);
  ASSERT_TRUE(engine.Execute(request).ok());
  auto warm = engine.Execute(request);
  ASSERT_TRUE(warm.ok());
  // Serving still works (the per-request hit flag is cache state, not
  // registry state) but every cumulative counter stays zero.
  EXPECT_TRUE(warm->serving.answer_hit);
  EXPECT_EQ(warm->serving.answer_hits, 0u);
  EXPECT_EQ(warm->serving.answer_misses, 0u);
  // Nothing was registered: the scrape is empty, and renders validly.
  const obs::MetricsSnapshot snapshot = engine.MetricsSnapshot();
  EXPECT_TRUE(snapshot.metrics.empty());
  EXPECT_EQ(obs::RenderJson(snapshot), "{\"metrics\":[]}");
}

TEST(ObservabilityTest, RegistryCountsEngineWorkExactly) {
  Trinit engine = OpenPaperEngine();
  const QueryRequest request = QueryRequest::Text("?x bornIn Germany", 5);
  auto cold = engine.Execute(request);
  ASSERT_TRUE(cold.ok());
  auto warm = engine.Execute(request);
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(warm->serving.answer_hit);

  const obs::MetricsSnapshot snapshot = engine.MetricsSnapshot();
  EXPECT_EQ(CounterValue(snapshot, "trinit_engine_requests_total"), 2.0);
  EXPECT_EQ(CounterValue(snapshot, "trinit_serve_answer_misses_total"), 1.0);
  EXPECT_EQ(CounterValue(snapshot, "trinit_serve_answer_hits_total"), 1.0);
  EXPECT_EQ(CounterValue(snapshot, "trinit_topk_items_pulled_total"),
            static_cast<double>(cold->stats.items_pulled));
  const obs::MetricsSnapshot::Metric* latency =
      snapshot.Find("trinit_engine_request_ms");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count, 2u);
  EXPECT_GT(latency->sum, 0.0);
  EXPECT_GT(latency->Quantile(0.99), 0.0);
  // Only the cold request observed an early-termination depth: answer
  // hits do no pulling and must not dilute the distribution.
  const obs::MetricsSnapshot::Metric* pulls =
      snapshot.Find("trinit_topk_pulls_per_request");
  ASSERT_NE(pulls, nullptr);
  EXPECT_EQ(pulls->count, 1u);
}

TEST(ObservabilityTest, SlowLogCapturesSlowRequestWithSpanTree) {
  TrinitOptions options;
  options.obs.slow_query_ms = 1e-6;  // everything is "slow"
  options.obs.slow_log_capacity = 4;
  Trinit engine = OpenPaperEngine(options);
  // Untraced on purpose: slow requests get their span tree built even
  // when the caller never asked for a trace.
  auto response = engine.Execute(QueryRequest::Text("?x bornIn Germany", 5));
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(response->span.has_value());

  const auto entries = engine.slow_query_log().Entries();
  ASSERT_EQ(entries.size(), 1u);
  const obs::SlowQueryRecord& record = entries[0];
  EXPECT_EQ(record.sequence, 1u);
  EXPECT_GT(record.wall_ms, 0.0);
  EXPECT_FALSE(record.answer_hit);
  EXPECT_NE(record.query.find("bornIn"), std::string::npos);
  // The full span tree rode along: root + per-stage children + the
  // uniform counter set, and an execution-ordered plan rendering.
  EXPECT_EQ(record.span.name, "execute");
  ASSERT_GE(record.span.children.size(), 2u);
  EXPECT_EQ(record.span.children[0].name, "parse");
  EXPECT_EQ(record.span.children.back().name, "process");
  EXPECT_FALSE(record.counters.empty());
  EXPECT_NE(record.plan.find("p0(est="), std::string::npos);
  EXPECT_EQ(CounterValue(engine.MetricsSnapshot(),
                         "trinit_slowlog_records_total"),
            1.0);

  // A repeat is served from the answer cache and recorded as such.
  ASSERT_TRUE(
      engine.Execute(QueryRequest::Text("?x bornIn Germany", 5)).ok());
  const auto after = engine.slow_query_log().Entries();
  ASSERT_EQ(after.size(), 2u);
  EXPECT_TRUE(after[1].answer_hit);
  EXPECT_TRUE(after[1].plan.empty());
}

TEST(ObservabilityTest, ObservationConsistentAcrossEngineOrigins) {
  // Stand the same serving state up four ways: TSV/world-built,
  // snapshot reloaded (copy + verified), snapshot mmap + trusted, and
  // hash-sharded. Each must emit the identical traced counter key set
  // and a registry whose per-engine deltas reconcile with the
  // per-request stats it served.
  Trinit built = OpenPaperEngine();
  const std::string path = TempPath("observability_paper.trinit");
  ASSERT_TRUE(built.Save(path).ok());

  TrinitOptions mmap_options;
  mmap_options.snapshot_read.mode = storage::LoadMode::kMapped;
  mmap_options.snapshot_read.verify = rdf::SnapshotValidation::kTrusted;
  TrinitOptions sharded_options;
  sharded_options.shard_count = 4;

  struct EngineUnderTest {
    std::string name;
    Trinit engine;
  };
  auto copy_opened = Trinit::Open(path, {});
  ASSERT_TRUE(copy_opened.ok()) << copy_opened.status();
  auto mmap_opened = Trinit::Open(path, mmap_options);
  ASSERT_TRUE(mmap_opened.ok()) << mmap_opened.status();
  std::vector<EngineUnderTest> engines;
  engines.push_back({"built", std::move(built)});
  engines.push_back({"copy", std::move(copy_opened).value()});
  engines.push_back({"mmap+trusted", std::move(mmap_opened).value()});
  engines.push_back({"sharded", OpenPaperEngine(sharded_options)});

  std::vector<std::string> reference_keys;
  for (EngineUnderTest& e : engines) {
    SCOPED_TRACE(e.name);
    const obs::MetricsSnapshot before = e.engine.MetricsSnapshot();
    size_t expected_pulled = 0;
    size_t requests = 0;
    for (const std::string& q : PaperQueries()) {
      QueryRequest request = QueryRequest::Text(q, 5);
      request.trace = true;
      auto response = e.engine.Execute(request);
      ASSERT_TRUE(response.ok()) << q;
      ++requests;
      expected_pulled += response->stats.items_pulled;
      std::vector<std::string> keys;
      for (const auto& counter : response->counters) {
        keys.push_back(counter.name);
      }
      ASSERT_TRUE(response->span.has_value());
      if (reference_keys.empty()) {
        reference_keys = keys;
      } else {
        // The uniform vocabulary: same keys, same order, on every
        // engine origin and shard count.
        EXPECT_EQ(keys, reference_keys) << q;
      }
    }
    const obs::MetricsSnapshot after = e.engine.MetricsSnapshot();
    EXPECT_EQ(CounterValue(after, "trinit_engine_requests_total") -
                  CounterValue(before, "trinit_engine_requests_total"),
              static_cast<double>(requests));
    EXPECT_EQ(CounterValue(after, "trinit_topk_items_pulled_total") -
                  CounterValue(before, "trinit_topk_items_pulled_total"),
              static_cast<double>(expected_pulled));
  }
}

TEST(ObservabilityTest, StorageGaugesReportTheOpen) {
  Trinit built = OpenPaperEngine();
  const std::string path = TempPath("observability_gauges.trinit");
  ASSERT_TRUE(built.Save(path).ok());

  TrinitOptions options;
  options.snapshot_read.mode = storage::LoadMode::kMapped;
  options.snapshot_read.verify = rdf::SnapshotValidation::kTrusted;
  auto loaded = Trinit::Open(path, options);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  const obs::MetricsSnapshot snapshot = loaded->MetricsSnapshot();
  const obs::MetricsSnapshot::Metric* open_ms =
      snapshot.Find("trinit_storage_open_ms");
  ASSERT_NE(open_ms, nullptr);
  EXPECT_EQ(open_ms->count, 1u);
  EXPECT_GT(CounterValue(snapshot, "trinit_storage_snapshot_bytes"), 0.0);
  EXPECT_GT(CounterValue(snapshot, "trinit_storage_bytes_touched_at_open"),
            0.0);
  EXPECT_EQ(CounterValue(snapshot, "trinit_storage_mapped"), 1.0);
  // A TSV/world-built engine never opened a file: gauges stay zero.
  EXPECT_EQ(CounterValue(built.MetricsSnapshot(), "trinit_storage_mapped"),
            0.0);
}

}  // namespace
}  // namespace trinit::core
