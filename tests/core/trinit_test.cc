#include "core/trinit.h"

#include <gtest/gtest.h>

#include "baselines/exact_engine.h"
#include "eval/runner.h"
#include "eval/workload.h"
#include "query/parser.h"
#include "testing/paper_world.h"

namespace trinit::core {
namespace {

synth::World SmallWorld(uint64_t seed = 21) {
  synth::WorldSpec spec;
  spec.seed = seed;
  spec.num_persons = 60;
  spec.num_universities = 8;
  spec.num_institutes = 5;
  spec.num_cities = 12;
  spec.num_countries = 4;
  spec.num_prizes = 4;
  spec.num_fields = 6;
  spec.predicates = synth::WorldSpec::DefaultPredicates();
  return synth::KgGenerator::Generate(spec);
}

TEST(TrinitTest, OpenOverPaperWorldAnswersUserD) {
  auto engine = Trinit::Open(testing::BuildPaperXkg());
  ASSERT_TRUE(engine.ok()) << engine.status();
  auto result = engine->Query("AlbertEinstein 'won nobel for' ?x", 5);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_FALSE(result->answers.empty());
  EXPECT_EQ(engine->RenderAnswer(*result, 0),
            "?x = 'discovery of the photoelectric effect'");
}

TEST(TrinitTest, ManualRulesEnableUserB) {
  auto engine = Trinit::Open(testing::BuildPaperXkg());
  ASSERT_TRUE(engine.ok());
  // Without rule 2, no answer (the paper world is too small for the
  // miners to find the inversion).
  auto before = engine->Query("AlbertEinstein hasAdvisor ?x", 5);
  ASSERT_TRUE(before.ok());
  EXPECT_TRUE(before->answers.empty());

  ASSERT_TRUE(engine->AddManualRules(testing::kPaperRulesText).ok());
  auto after = engine->Query("AlbertEinstein hasAdvisor ?x", 5);
  ASSERT_TRUE(after.ok());
  ASSERT_FALSE(after->answers.empty());
  EXPECT_EQ(engine->RenderAnswer(*after, 0), "?x = AlfredKleiner");
}

TEST(TrinitTest, ExplainAndSuggestWork) {
  auto engine = Trinit::Open(testing::BuildPaperXkg());
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine->AddManualRules(testing::kPaperRulesText).ok());
  auto q = query::Parser::Parse(
      "SELECT ?x WHERE AlbertEinstein affiliation ?x ; ?x member "
      "IvyLeague",
      &engine->xkg().dict());
  ASSERT_TRUE(q.ok());
  auto result = engine->Answer(*q, 5);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->answers.empty());

  explain::Explanation ex = engine->Explain(*result, 0);
  EXPECT_NE(ex.ToString().find("PrincetonUniversity"), std::string::npos);

  auto suggestions = engine->Suggest(*q, *result);
  EXPECT_FALSE(suggestions.empty());  // at least the rule feedback
}

TEST(TrinitTest, FromWorldBuildsFullPipeline) {
  Trinit::BuildReport report;
  auto engine = Trinit::FromWorld(SmallWorld(), {}, &report);
  ASSERT_TRUE(engine.ok()) << engine.status();
  EXPECT_GT(report.kg_triples, 100u);
  EXPECT_GT(report.extraction_triples, 50u);
  EXPECT_GT(report.corpus_documents, 10u);
  EXPECT_GT(report.extractions, 100u);
  EXPECT_GT(report.rules_mined, 0u);
  EXPECT_EQ(engine->rules().size(), report.rules_mined);
}

TEST(TrinitTest, MinedRulesTranslateParaphrases) {
  synth::World world = SmallWorld();
  auto engine = Trinit::FromWorld(world);
  ASSERT_TRUE(engine.ok());
  // Some synonym rule bridging affiliation <-> a token paraphrase must
  // have been mined (that is what the corpus engineering guarantees).
  bool found = false;
  for (const relax::Rule& rule : engine->rules().rules()) {
    if (rule.kind == relax::RuleKind::kSynonym &&
        rule.ToString().find("affiliation") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(TrinitTest, MiningTogglesReduceRuleKinds) {
  synth::World world = SmallWorld();
  TrinitOptions no_inv;
  no_inv.mine_inversions = false;
  auto engine = Trinit::FromWorld(world, no_inv);
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ(engine->rules().CountOfKind(relax::RuleKind::kInversion), 0u);
}

TEST(TrinitTest, RunOperatorAbsorbsCustomRules) {
  // The paper's operator API: plug in custom rule generation.
  class FixedRuleOperator : public relax::RelaxationOperator {
   public:
    std::string name() const override { return "fixed"; }
    Status Generate(const xkg::Xkg&, relax::RuleSet* rules) override {
      auto rule = relax::ParseManualRule(
          "custom: ?x knows ?y => ?y knows ?x @ 0.5", 1);
      TRINIT_RETURN_IF_ERROR(rule.status());
      return rules->Add(std::move(rule).value());
    }
  };
  auto engine = Trinit::Open(testing::BuildPaperXkg());
  ASSERT_TRUE(engine.ok());
  size_t before = engine->rules().size();
  FixedRuleOperator op;
  ASSERT_TRUE(engine->RunOperator(op).ok());
  EXPECT_EQ(engine->rules().size(), before + 1);
}

TEST(TrinitTest, PerRequestOverridesServeMixedWorkloadsFromOneEngine) {
  // One engine; two requests differing only in k and relaxation must
  // match engines *built* with those settings.
  auto engine = Trinit::Open(testing::BuildPaperXkg());
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine->AddManualRules(testing::kPaperRulesText).ok());

  TrinitOptions strict_options;
  strict_options.processor.enable_relaxation = false;
  auto strict_engine =
      Trinit::Open(testing::BuildPaperXkg(), strict_options);
  ASSERT_TRUE(strict_engine.ok());
  ASSERT_TRUE(strict_engine->AddManualRules(testing::kPaperRulesText).ok());

  QueryRequest relaxed = QueryRequest::Text("?x bornIn Germany", 3);
  QueryRequest strict = relaxed;
  strict.enable_relaxation = false;

  auto relaxed_response = engine->Execute(relaxed);
  auto strict_response = engine->Execute(strict);
  auto strict_reference = strict_engine->Query("?x bornIn Germany", 3);
  ASSERT_TRUE(relaxed_response.ok());
  ASSERT_TRUE(strict_response.ok());
  ASSERT_TRUE(strict_reference.ok());

  // Relaxation finds Einstein via the geo rule; strict matching cannot.
  ASSERT_FALSE(relaxed_response->result().answers.empty());
  EXPECT_EQ(engine->RenderAnswer(relaxed_response->result(), 0),
            "?x = AlbertEinstein");
  EXPECT_EQ(strict_response->result().answers.size(),
            strict_reference->answers.size());
  EXPECT_TRUE(strict_response->result().answers.empty());
  EXPECT_LE(relaxed_response->result().answers.size(), 3u);
}

TEST(TrinitTest, QueryParseErrorsPropagate) {
  auto engine = Trinit::Open(testing::BuildPaperXkg());
  ASSERT_TRUE(engine.ok());
  auto result = engine->Query("?x bornIn", 5);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
}

// End-to-end evaluation smoke test: TriniT must beat the no-relaxation
// and keyword baselines on the generated workload (the E1 shape).
TEST(TrinitEvalTest, TrinitBeatsBaselinesOnWorkload) {
  synth::World world = SmallWorld(33);
  auto engine = Trinit::FromWorld(world);
  ASSERT_TRUE(engine.ok());

  // KG-only exact baseline: a separate XKG without the extraction layer.
  xkg::XkgBuilder kg_only_builder;
  synth::KgGenerator::PopulateKg(world, &kg_only_builder);
  auto kg_only = kg_only_builder.Build();
  ASSERT_TRUE(kg_only.ok());
  baselines::ExactEngine kg_exact(*kg_only, {});

  eval::WorkloadGenerator::Options wopts;
  wopts.num_queries = 18;  // keep the unit test quick
  eval::Workload workload = eval::WorkloadGenerator::Generate(world, wopts);
  ASSERT_FALSE(workload.queries.empty());

  // Both systems run through the unified core::Engine interface.
  std::vector<eval::EngineUnderTest> systems = {
      {"TriniT", &engine.value(), {}},
      {"KG-exact", &kg_exact, {}},
  };
  auto reports = eval::Runner::Run(workload, systems, 10);
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_GT(reports[0].ndcg5, reports[1].ndcg5)
      << "TriniT must beat the KG-exact baseline";
  EXPECT_GT(reports[0].ndcg5, 0.2);
}

}  // namespace
}  // namespace trinit::core
