// Coverage for the request/response front door: per-request option
// overrides must behave exactly like an engine configured with those
// options at Open() time, and the resolved effective options must be
// reported back.

#include "core/request.h"

#include <gtest/gtest.h>

#include "baselines/exact_engine.h"
#include "baselines/keyword_engine.h"
#include "core/engine.h"
#include "core/trinit.h"
#include "query/parser.h"
#include "testing/paper_world.h"

namespace trinit::core {
namespace {

std::vector<std::string> Rendered(const Trinit& engine,
                                  const topk::TopKResult& result) {
  std::vector<std::string> out;
  for (size_t i = 0; i < result.answers.size(); ++i) {
    out.push_back(engine.RenderAnswer(result, i));
  }
  return out;
}

TEST(ResolveRequestOptionsTest, InheritsEngineDefaultsWhenUnset) {
  scoring::ScorerOptions scorer;
  scorer.use_idf = false;
  topk::ProcessorOptions processor;
  processor.k = 7;
  QueryRequest request;  // everything unset

  ResolvedOptions resolved =
      ResolveRequestOptions(scorer, processor, request);
  EXPECT_EQ(resolved.scorer, scorer);
  EXPECT_EQ(resolved.processor.k, 7);
  EXPECT_TRUE(resolved.processor.enable_relaxation);
}

TEST(ResolveRequestOptionsTest, RequestFieldsWinOverEngineAndOverrides) {
  topk::ProcessorOptions engine_processor;
  engine_processor.k = 7;

  QueryRequest request;
  topk::ProcessorOptions per_request;
  per_request.k = 3;
  per_request.max_query_variants = 5;
  request.processor = per_request;
  request.k = 2;                      // beats both k's
  request.enable_relaxation = false;  // beats the override's default
  request.timeout_ms = 12.5;
  request.max_items_budget = 99;

  ResolvedOptions resolved =
      ResolveRequestOptions({}, engine_processor, request);
  EXPECT_EQ(resolved.processor.k, 2);
  EXPECT_EQ(resolved.processor.max_query_variants, 5u);
  EXPECT_FALSE(resolved.processor.enable_relaxation);
  EXPECT_DOUBLE_EQ(resolved.processor.deadline_ms, 12.5);
  EXPECT_EQ(resolved.processor.join.max_pulls, 99u);
}

TEST(RequestTest, PerRequestKMatchesPerEngineK) {
  auto engine = Trinit::Open(testing::BuildPaperXkg());
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine->AddManualRules(testing::kPaperRulesText).ok());

  // One engine, two requests with different k.
  auto r1 = engine->Execute(QueryRequest::Text("AlbertEinstein ?p ?o", 1));
  auto r5 = engine->Execute(QueryRequest::Text("AlbertEinstein ?p ?o", 5));
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r5.ok());
  EXPECT_EQ(r1->result().answers.size(), 1u);
  EXPECT_GT(r5->result().answers.size(), 1u);
  EXPECT_EQ(r1->effective_processor.k, 1);
  EXPECT_EQ(r5->effective_processor.k, 5);
  // Both rankings agree on the best score (the head itself can differ
  // under ties, which this star query has plenty of).
  EXPECT_DOUBLE_EQ(r1->result().answers[0].score,
                   r5->result().answers[0].score);
}

TEST(RequestTest, RelaxationOverrideMatchesEngineBuiltWithoutRelaxation) {
  // Reference: an engine whose processor disables relaxation at Open().
  core::TrinitOptions no_relax_options;
  no_relax_options.processor.enable_relaxation = false;
  auto no_relax_engine =
      Trinit::Open(testing::BuildPaperXkg(), no_relax_options);
  ASSERT_TRUE(no_relax_engine.ok());
  ASSERT_TRUE(
      no_relax_engine->AddManualRules(testing::kPaperRulesText).ok());

  // Subject: a fully-relaxing engine with a per-request off switch.
  auto engine = Trinit::Open(testing::BuildPaperXkg());
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine->AddManualRules(testing::kPaperRulesText).ok());

  const char* queries[] = {"?x bornIn Germany",
                           "AlbertEinstein hasAdvisor ?x",
                           "AlbertEinstein affiliation ?x"};
  for (const char* text : queries) {
    QueryRequest off = QueryRequest::Text(text, 5);
    off.enable_relaxation = false;
    auto overridden = engine->Execute(off);
    auto reference = no_relax_engine->Query(text, 5);
    ASSERT_TRUE(overridden.ok()) << text;
    ASSERT_TRUE(reference.ok()) << text;
    EXPECT_EQ(Rendered(*engine, overridden->result()),
              Rendered(*no_relax_engine, *reference))
        << text;
    EXPECT_FALSE(overridden->effective_processor.enable_relaxation);

    // And the same engine still relaxes when the request does not say
    // otherwise.
    auto on = engine->Execute(QueryRequest::Text(text, 5));
    ASSERT_TRUE(on.ok());
    EXPECT_TRUE(on->effective_processor.enable_relaxation);
    EXPECT_GE(on->result().answers.size(),
              overridden->result().answers.size());
  }
}

TEST(RequestTest, ScorerOverrideMatchesEngineBuiltWithThatScorer) {
  scoring::ScorerOptions no_confidence;
  no_confidence.use_confidence = false;

  core::TrinitOptions reference_options;
  reference_options.scorer = no_confidence;
  auto reference_engine =
      Trinit::Open(testing::BuildPaperXkg(), reference_options);
  ASSERT_TRUE(reference_engine.ok());

  auto engine = Trinit::Open(testing::BuildPaperXkg());
  ASSERT_TRUE(engine.ok());

  QueryRequest request =
      QueryRequest::Text("AlbertEinstein 'won nobel for' ?x", 5);
  request.scorer = no_confidence;
  auto overridden = engine->Execute(request);
  auto reference =
      reference_engine->Query("AlbertEinstein 'won nobel for' ?x", 5);
  ASSERT_TRUE(overridden.ok());
  ASSERT_TRUE(reference.ok());
  ASSERT_EQ(overridden->result().answers.size(), reference->answers.size());
  for (size_t i = 0; i < reference->answers.size(); ++i) {
    EXPECT_DOUBLE_EQ(overridden->result().answers[i].score,
                     reference->answers[i].score);
  }
  EXPECT_EQ(overridden->effective_scorer, no_confidence);
}

TEST(RequestTest, ParsedQueryAndTextAgree) {
  auto engine = Trinit::Open(testing::BuildPaperXkg());
  ASSERT_TRUE(engine.ok());
  auto parsed = query::Parser::Parse("AlbertEinstein bornIn ?x",
                                     &engine->xkg().dict());
  ASSERT_TRUE(parsed.ok());

  auto from_text =
      engine->Execute(QueryRequest::Text("AlbertEinstein bornIn ?x", 5));
  auto from_parsed = engine->Execute(QueryRequest::Parsed(*parsed, 5));
  ASSERT_TRUE(from_text.ok());
  ASSERT_TRUE(from_parsed.ok());
  EXPECT_EQ(Rendered(*engine, from_text->result()),
            Rendered(*engine, from_parsed->result()));
}

TEST(RequestTest, TraceCollectsStages) {
  auto engine = Trinit::Open(testing::BuildPaperXkg());
  ASSERT_TRUE(engine.ok());

  QueryRequest request = QueryRequest::Text("AlbertEinstein bornIn ?x", 5);
  request.trace = true;
  auto response = engine->Execute(request);
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->stages.size(), 3u);
  EXPECT_EQ(response->stages[0].stage, "parse");
  EXPECT_EQ(response->stages[1].stage, "cache");
  EXPECT_EQ(response->stages[2].stage, "process");
  EXPECT_GT(response->wall_ms, 0.0);

  // No trace -> no stages.
  auto quiet =
      engine->Execute(QueryRequest::Text("AlbertEinstein bornIn ?x", 5));
  ASSERT_TRUE(quiet.ok());
  EXPECT_TRUE(quiet->stages.empty());
}

TEST(RequestTest, ParseErrorsPropagateThroughExecute) {
  auto engine = Trinit::Open(testing::BuildPaperXkg());
  ASSERT_TRUE(engine.ok());
  auto response = engine->Execute(QueryRequest::Text("?x bornIn", 5));
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kParseError);
}

TEST(RequestTest, ItemBudgetCapsWork) {
  auto engine = Trinit::Open(testing::BuildPaperXkg());
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine->AddManualRules(testing::kPaperRulesText).ok());

  QueryRequest request = QueryRequest::Text("?x bornIn Germany", 5);
  request.max_items_budget = 1;
  auto response = engine->Execute(request);
  ASSERT_TRUE(response.ok());
  EXPECT_LE(response->stats.items_pulled, 1u);
  EXPECT_EQ(response->effective_processor.join.max_pulls, 1u);
}

TEST(RequestTest, ExpiredDeadlineTruncatesInsteadOfFailing) {
  auto engine = Trinit::Open(testing::BuildPaperXkg());
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine->AddManualRules(testing::kPaperRulesText).ok());

  QueryRequest request = QueryRequest::Text("?x bornIn Germany", 5);
  request.timeout_ms = 1e-6;  // expires before any variant evaluates
  auto response = engine->Execute(request);
  ASSERT_TRUE(response.ok());  // truncation is not an error
  EXPECT_TRUE(response->deadline_hit);
  EXPECT_TRUE(response->stats.deadline_hit);
  EXPECT_DOUBLE_EQ(response->effective_processor.deadline_ms, 1e-6);
}

TEST(RequestTest, BaselinesServeRequestsThroughEngineInterface) {
  xkg::Xkg xkg = testing::BuildPaperXkg();
  baselines::ExactEngine exact(xkg, {});
  baselines::KeywordEngine keyword(xkg, {});
  auto trinit = Trinit::Open(testing::BuildPaperXkg());
  ASSERT_TRUE(trinit.ok());

  const Engine* engines[] = {&exact, &keyword, &trinit.value()};
  for (const Engine* engine : engines) {
    auto response =
        engine->Execute(QueryRequest::Text("AlbertEinstein bornIn ?x", 5));
    ASSERT_TRUE(response.ok()) << engine->name();
    ASSERT_FALSE(response->result().answers.empty()) << engine->name();
    EXPECT_EQ(engine->xkg().dict().DebugLabel(
                  response->result().ValueAt(0, 0)),
              "Ulm")
        << engine->name();
    EXPECT_FALSE(engine->name().empty());
  }
}

TEST(RequestTest, ExactEngineIgnoresRelaxationOverride) {
  xkg::Xkg xkg = testing::BuildPaperXkg();
  baselines::ExactEngine exact(xkg, {});
  QueryRequest request = QueryRequest::Text("?x bornIn Germany", 5);
  request.enable_relaxation = true;  // must not turn the baseline soft
  auto response = exact.Execute(request);
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->result().answers.empty());
  EXPECT_FALSE(response->effective_processor.enable_relaxation);
}

}  // namespace
}  // namespace trinit::core
