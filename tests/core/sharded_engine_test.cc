// Engine-level sharded scatter-gather serving: at any shard count the
// answers, scores, AND total pull/probe/decode work counters are
// byte-identical to the unsharded engine (the per-shard merge is exact,
// not approximate); traced output carries one uniform counter key set
// at any shard count (an unsharded run reports shards=1). Snapshots
// persist the decomposition, and ExtendKg preserves it across the
// rebuild.

#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/trinit.h"
#include "synth/kg_generator.h"
#include "testing/paper_world.h"

namespace trinit::core {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// Byte-comparable rendering of a ranked answer list (projection values
/// + nano-rounded scores), same equality the benches gate on.
std::string AnswerBytes(const topk::TopKResult& result) {
  std::ostringstream os;
  for (const auto& ans : result.answers) {
    for (size_t i = 0; i < result.projection.size(); ++i) {
      os << ans.binding.Get(static_cast<query::VarId>(i)) << ',';
    }
    os << std::llround(ans.score * 1e9) << ';';
  }
  return os.str();
}

/// The work counters that must not change under sharding. Deliberately
/// excludes `per_shard_pulled` — the only counter sharding adds.
std::string WorkCounters(const topk::TopKResult::RunStats& s) {
  std::ostringstream os;
  os << s.items_pulled << '/' << s.items_decoded << '/' << s.items_skipped
     << '/' << s.combinations_tried << '/' << s.partition_probes << '/'
     << s.query_variants_evaluated << '/' << s.alternatives_opened;
  return os.str();
}

std::pair<std::string, std::string> RunOnce(const Trinit& engine,
                                            const std::string& text) {
  auto response = engine.Execute(QueryRequest::Text(text, 5));
  EXPECT_TRUE(response.ok()) << response.status() << " for " << text;
  if (!response.ok()) return {};
  return {AnswerBytes(response->result()), WorkCounters(response->stats)};
}

const std::vector<std::string>& PaperQueries() {
  static const std::vector<std::string> queries = {
      "?x bornIn Germany",
      "AlbertEinstein hasAdvisor ?x",
      "SELECT ?x WHERE ?x affiliation ?u ; ?u 'housed in' ?p",
      "?x 'won nobel for' ?y",
  };
  return queries;
}

Trinit OpenPaperEngine(size_t shard_count) {
  TrinitOptions options;
  options.shard_count = shard_count;
  auto engine = Trinit::Open(testing::BuildPaperXkg(), options);
  EXPECT_TRUE(engine.ok()) << engine.status();
  EXPECT_TRUE(engine->AddManualRules(testing::kPaperRulesText).ok());
  return std::move(engine).value();
}

TEST(ShardedEngineTest, AnswersAndWorkIdenticalToUnshardedOnPaperWorld) {
  const Trinit baseline = OpenPaperEngine(1);
  EXPECT_EQ(baseline.xkg().sharded(), nullptr);
  std::vector<std::pair<std::string, std::string>> expected;
  for (const std::string& q : PaperQueries()) {
    expected.push_back(RunOnce(baseline, q));
  }
  for (const size_t shard_count : {2u, 4u, 8u}) {
    const Trinit sharded = OpenPaperEngine(shard_count);
    ASSERT_NE(sharded.xkg().sharded(), nullptr);
    EXPECT_EQ(sharded.xkg().sharded()->shard_count(), shard_count);
    for (size_t i = 0; i < PaperQueries().size(); ++i) {
      auto [bytes, work] = RunOnce(sharded, PaperQueries()[i]);
      EXPECT_EQ(bytes, expected[i].first)
          << "S=" << shard_count << " " << PaperQueries()[i];
      EXPECT_EQ(work, expected[i].second)
          << "S=" << shard_count << " " << PaperQueries()[i];
    }
  }
}

TEST(ShardedEngineTest, PropertyShardedEqualsUnshardedAcrossWorlds) {
  for (const uint64_t seed : {11u, 47u}) {
    synth::WorldSpec spec;
    spec.seed = seed;
    spec.num_persons = 40 + seed % 13;
    spec.num_universities = 6;
    spec.num_institutes = 4;
    spec.num_cities = 8;
    spec.num_countries = 3;
    spec.num_prizes = 3;
    spec.num_fields = 4;
    spec.predicates = synth::WorldSpec::DefaultPredicates();
    synth::World world = synth::KgGenerator::Generate(spec);

    auto baseline = Trinit::FromWorld(world);
    ASSERT_TRUE(baseline.ok()) << baseline.status();

    const auto& unis = world.OfClass(synth::EntityClass::kUniversity);
    const auto& cities = world.OfClass(synth::EntityClass::kCity);
    ASSERT_GE(unis.size(), 2u);
    ASSERT_GE(cities.size(), 2u);
    const std::vector<std::string> queries = {
        "?x bornIn " + world.entities[cities[0]].name,
        "?x affiliation " + world.entities[unis[0]].name,
        "SELECT ?x WHERE ?x affiliation ?u ; ?u campusIn " +
            world.entities[cities[1]].name,
        "SELECT ?a ?b WHERE ?a hasAdvisor ?b ; ?b affiliation " +
            world.entities[unis[1]].name,
        "?x wonPrize ?p",
    };
    std::vector<std::pair<std::string, std::string>> expected;
    for (const std::string& q : queries) {
      expected.push_back(RunOnce(*baseline, q));
    }

    for (const size_t shard_count : {2u, 4u, 8u}) {
      TrinitOptions options;
      options.shard_count = shard_count;
      // Rule mining consumes the merged per-shard stats — equal to the
      // unsharded compute bit-for-bit — so the mined rule set (and with
      // it every rewrite) must come out identical.
      auto sharded = Trinit::FromWorld(world, options);
      ASSERT_TRUE(sharded.ok()) << sharded.status();
      ASSERT_EQ(sharded->rules().size(), baseline->rules().size());
      for (size_t i = 0; i < queries.size(); ++i) {
        SCOPED_TRACE("seed " + std::to_string(seed) + " S=" +
                     std::to_string(shard_count) + " " + queries[i]);
        auto [bytes, work] = RunOnce(*sharded, queries[i]);
        EXPECT_EQ(bytes, expected[i].first);
        EXPECT_EQ(work, expected[i].second);
      }
    }
  }
}

TEST(ShardedEngineTest, BalanceCountersEmittedUniformly) {
  auto find_counter = [](const QueryResponse& response, const char* name) {
    for (const TraceCounter& c : response.counters) {
      if (c.name == name) return std::optional<double>(c.value);
    }
    return std::optional<double>();
  };
  auto counter_names = [](const QueryResponse& response) {
    std::vector<std::string> names;
    for (const TraceCounter& c : response.counters) names.push_back(c.name);
    return names;
  };
  // Traced output carries one uniform counter vocabulary at any shard
  // count (PR 10): an unsharded run is one shard that pulled
  // everything, so dashboards never branch on key presence.
  const Trinit baseline = OpenPaperEngine(1);
  const Trinit sharded = OpenPaperEngine(8);
  bool scattered_query_seen = false;
  for (const std::string& q : PaperQueries()) {
    QueryRequest request = QueryRequest::Text(q, 5);
    request.trace = true;
    auto flat = baseline.Execute(request);
    auto scattered = sharded.Execute(request);
    ASSERT_TRUE(flat.ok());
    ASSERT_TRUE(scattered.ok());

    // The key sets — including emission order — are identical.
    EXPECT_EQ(counter_names(*flat), counter_names(*scattered)) << q;

    EXPECT_EQ(find_counter(*flat, "shards"), std::optional<double>(1.0))
        << q;
    EXPECT_EQ(find_counter(*flat, "shard_pulls_max"),
              std::optional<double>(
                  static_cast<double>(flat->stats.items_pulled)))
        << q;

    const auto shards = find_counter(*scattered, "shards");
    const auto max_pulled = find_counter(*scattered, "shard_pulls_max");
    ASSERT_TRUE(shards.has_value()) << q;
    ASSERT_TRUE(max_pulled.has_value()) << q;
    EXPECT_GE(*shards, 1.0) << q;
    EXPECT_LE(*shards, 8.0) << q;
    EXPECT_LE(*max_pulled, static_cast<double>(scattered->stats.items_pulled))
        << q;
    if (*shards > 1.0) {
      scattered_query_seen = true;
      EXPECT_GE(*max_pulled, 1.0) << q;
    }
  }
  // Over the paper mix at S=8 at least one query must actually span
  // shards (a query whose matches hash to one shard reports shards=1).
  EXPECT_TRUE(scattered_query_seen);
}

TEST(ShardedEngineTest, SnapshotPersistsTheDecomposition) {
  Trinit source = OpenPaperEngine(4);
  // Warm lazy shapes so the snapshot carries per-shard index state.
  std::vector<std::string> expected_bytes;
  for (const std::string& q : PaperQueries()) {
    expected_bytes.push_back(RunOnce(source, q).first);
  }
  const size_t shapes_at_save = source.xkg().sharded()->score_shapes_built();
  EXPECT_GT(shapes_at_save, 0u);

  const std::string path = TempPath("engine_sharded.trinit");
  ASSERT_TRUE(source.Save(path).ok());

  // Reopen mapped + trusted with *default* options (shard_count = 1):
  // the snapshot's own decomposition must win, with zero rebuilds.
  TrinitOptions options;
  options.snapshot_read = {storage::LoadMode::kMapped,
                           rdf::SnapshotValidation::kTrusted};
  storage::LoadReport report;
  auto loaded = Trinit::Open(path, options, &report);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(report.shard_count, 4u);
  EXPECT_EQ(report.index_rebuilds, 0u);
  ASSERT_NE(loaded->xkg().sharded(), nullptr);
  EXPECT_EQ(loaded->xkg().sharded()->shard_count(), 4u);
  // Every shape materialized at save time was restored, none re-sorted.
  EXPECT_EQ(loaded->xkg().sharded()->score_shapes_built(), shapes_at_save);
  for (size_t i = 0; i < PaperQueries().size(); ++i) {
    EXPECT_EQ(RunOnce(*loaded, PaperQueries()[i]).first, expected_bytes[i])
        << PaperQueries()[i];
  }
  EXPECT_EQ(loaded->xkg().sharded()->score_shapes_built(), shapes_at_save);

  // Full-verification copy load restores the same decomposition.
  storage::LoadReport copy_report;
  auto copied = Trinit::Open(path, {}, &copy_report);
  ASSERT_TRUE(copied.ok()) << copied.status();
  EXPECT_EQ(copy_report.shard_count, 4u);
  ASSERT_NE(copied->xkg().sharded(), nullptr);
  for (size_t i = 0; i < PaperQueries().size(); ++i) {
    EXPECT_EQ(RunOnce(*copied, PaperQueries()[i]).first, expected_bytes[i]);
  }
}

TEST(ShardedEngineTest, UnshardedSnapshotHonorsTheOpenOptions) {
  Trinit source = OpenPaperEngine(1);
  const std::string expected = RunOnce(source, PaperQueries()[0]).first;
  const std::string path = TempPath("engine_unsharded.trinit");
  ASSERT_TRUE(source.Save(path).ok());

  TrinitOptions options;
  options.shard_count = 4;
  storage::LoadReport report;
  auto loaded = Trinit::Open(path, options, &report);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  // The snapshot carried no decomposition (shard_count reports 0); the
  // opener built one from the options.
  EXPECT_EQ(report.shard_count, 0u);
  ASSERT_NE(loaded->xkg().sharded(), nullptr);
  EXPECT_EQ(loaded->xkg().sharded()->shard_count(), 4u);
  EXPECT_EQ(RunOnce(*loaded, PaperQueries()[0]).first, expected);
}

TEST(ShardedEngineTest, PrefetchHintsReportMappedBytes) {
  Trinit source = OpenPaperEngine(4);
  for (const std::string& q : PaperQueries()) (void)RunOnce(source, q);
  const std::string path = TempPath("engine_prefetch.trinit");
  ASSERT_TRUE(source.Save(path).ok());

  TrinitOptions options;
  options.snapshot_read.mode = storage::LoadMode::kMapped;
  options.snapshot_read.prefetch = true;
  storage::LoadReport report;
  auto mapped = Trinit::Open(path, options, &report);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  EXPECT_GT(report.bytes_prefetched, 0u);

  // The copy path never issues hints, prefetch requested or not.
  options.snapshot_read.mode = storage::LoadMode::kCopy;
  storage::LoadReport copy_report;
  auto copied = Trinit::Open(path, options, &copy_report);
  ASSERT_TRUE(copied.ok()) << copied.status();
  EXPECT_EQ(copy_report.bytes_prefetched, 0u);
}

TEST(ShardedEngineTest, ExtendKgPreservesTheShardCount) {
  Trinit engine = OpenPaperEngine(4);
  ASSERT_TRUE(engine
                  .ExtendKg("MarieCurie bornIn Warsaw\n"
                            "Warsaw locatedIn Poland\n")
                  .ok());
  ASSERT_NE(engine.xkg().sharded(), nullptr);
  EXPECT_EQ(engine.xkg().sharded()->shard_count(), 4u);
  // (The geo rules may relax extra answers in; the exact fact ranks
  // first.)
  auto result = engine.Query("MarieCurie bornIn ?x", 5);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->answers.empty());
  EXPECT_EQ(engine.RenderAnswer(*result, 0), "?x = Warsaw");

  // The same holds when the decomposition came from a snapshot rather
  // than the options.
  const std::string path = TempPath("engine_extend.trinit");
  ASSERT_TRUE(engine.Save(path).ok());
  auto loaded = Trinit::Open(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(loaded->ExtendKg("PierreCurie bornIn Paris\n").ok());
  ASSERT_NE(loaded->xkg().sharded(), nullptr);
  EXPECT_EQ(loaded->xkg().sharded()->shard_count(), 4u);
}

// TSan exercise: concurrent queries race per-shard first-touch builds
// and an ExtendKg rebuild of the whole decomposition. Correctness of
// the answers is checked elsewhere; this test is about the absence of
// data races under `ci.sh --tsan`.
TEST(ShardedEngineTest, ConcurrentQueriesSurviveExtendKg) {
  Trinit engine = OpenPaperEngine(4);
  ASSERT_TRUE(engine.AddManualRules(testing::kPaperRulesText).ok());
  std::vector<std::thread> workers;
  workers.reserve(5);
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&engine, t]() {
      for (int i = 0; i < 8; ++i) {
        const std::string& q = PaperQueries()[(t + i) % PaperQueries().size()];
        auto response = engine.Execute(QueryRequest::Text(q, 5));
        EXPECT_TRUE(response.ok()) << response.status();
      }
    });
  }
  workers.emplace_back([&engine]() {
    for (int i = 0; i < 3; ++i) {
      EXPECT_TRUE(engine
                      .ExtendKg("Entity" + std::to_string(i) +
                                " bornIn City" + std::to_string(i) + "\n")
                      .ok());
    }
  });
  for (std::thread& worker : workers) worker.join();
  ASSERT_NE(engine.xkg().sharded(), nullptr);
  EXPECT_EQ(engine.xkg().sharded()->shard_count(), 4u);
}

}  // namespace
}  // namespace trinit::core
