#include "synth/corpus_generator.h"

#include <gtest/gtest.h>

namespace trinit::synth {
namespace {

WorldSpec SmallSpec() {
  WorldSpec spec;
  spec.seed = 11;
  spec.num_persons = 40;
  spec.num_universities = 6;
  spec.num_institutes = 4;
  spec.num_cities = 10;
  spec.num_countries = 3;
  spec.num_prizes = 3;
  spec.num_fields = 5;
  spec.predicates = WorldSpec::DefaultPredicates();
  return spec;
}

TEST(CorpusGeneratorTest, Deterministic) {
  World world = KgGenerator::Generate(SmallSpec());
  auto a = CorpusGenerator::Generate(world);
  auto b = CorpusGenerator::Generate(world);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].text, b[i].text);
  }
}

TEST(CorpusGeneratorTest, DocumentsHaveSequentialIdsAndText) {
  World world = KgGenerator::Generate(SmallSpec());
  auto docs = CorpusGenerator::Generate(world);
  ASSERT_FALSE(docs.empty());
  for (size_t i = 0; i < docs.size(); ++i) {
    EXPECT_EQ(docs[i].id, i);
    EXPECT_FALSE(docs[i].text.empty());
  }
}

TEST(CorpusGeneratorTest, HeldOutFactsAreVerbalized) {
  World world = KgGenerator::Generate(SmallSpec());
  auto docs = CorpusGenerator::Generate(world);
  std::string all_text;
  for (const Document& d : docs) all_text += d.text + " ";

  // Every held-out fact's subject must appear in the corpus through at
  // least one alias (the sentence embedding its fact).
  size_t checked = 0;
  for (const Fact& f : world.facts) {
    if (f.in_kg) continue;
    if (++checked > 50) break;  // sample to keep the test fast
    const Entity& subject = world.entities[f.subject];
    bool found = false;
    for (const std::string& alias : subject.aliases) {
      if (all_text.find(alias) != std::string::npos) found = true;
    }
    EXPECT_TRUE(found) << "held-out subject " << subject.name
                       << " never mentioned";
  }
  EXPECT_GT(checked, 0u);
}

TEST(CorpusGeneratorTest, ParaphrasesAppear) {
  World world = KgGenerator::Generate(SmallSpec());
  auto docs = CorpusGenerator::Generate(world);
  std::string all_text;
  for (const Document& d : docs) all_text += d.text + " ";
  // The canonical and at least one alternative phrasing of affiliation
  // must both occur (that co-occurrence is what the synonym miner needs).
  EXPECT_NE(all_text.find("works at"), std::string::npos);
  EXPECT_NE(all_text.find("is employed by"), std::string::npos);
}

TEST(CorpusGeneratorTest, FactSentenceShape) {
  World world = KgGenerator::Generate(SmallSpec());
  Rng rng(3);
  // Find an affiliation fact.
  const Fact* fact = nullptr;
  size_t pi = world.PredicateIndex("affiliation");
  for (const Fact& f : world.facts) {
    if (f.predicate == pi) {
      fact = &f;
      break;
    }
  }
  ASSERT_NE(fact, nullptr);
  std::string s = CorpusGenerator::FactSentence(world, *fact, 0, rng);
  EXPECT_EQ(s.back(), '.');
  EXPECT_NE(s.find("works at"), std::string::npos);
}

TEST(CorpusGeneratorTest, RationaleSentencesExist) {
  World world = KgGenerator::Generate(SmallSpec());
  auto docs = CorpusGenerator::Generate(world);
  std::string all_text;
  for (const Document& d : docs) all_text += d.text + " ";
  // Prize rationales produce "... for work on <field>"-style tails.
  bool has_rationale =
      all_text.find(" for work on ") != std::string::npos ||
      all_text.find(" for the discovery of ") != std::string::npos ||
      all_text.find(" for contributions to ") != std::string::npos ||
      all_text.find(" for a theory of ") != std::string::npos;
  EXPECT_TRUE(has_rationale);
}

}  // namespace
}  // namespace trinit::synth
