#include "synth/kg_generator.h"

#include <gtest/gtest.h>

#include <set>

namespace trinit::synth {
namespace {

WorldSpec SmallSpec(uint64_t seed = 7) {
  WorldSpec spec;
  spec.seed = seed;
  spec.num_persons = 60;
  spec.num_universities = 8;
  spec.num_institutes = 5;
  spec.num_cities = 12;
  spec.num_countries = 4;
  spec.num_prizes = 4;
  spec.num_fields = 6;
  spec.predicates = WorldSpec::DefaultPredicates();
  return spec;
}

TEST(KgGeneratorTest, DeterministicFromSeed) {
  World a = KgGenerator::Generate(SmallSpec(7));
  World b = KgGenerator::Generate(SmallSpec(7));
  ASSERT_EQ(a.entities.size(), b.entities.size());
  ASSERT_EQ(a.facts.size(), b.facts.size());
  for (size_t i = 0; i < a.entities.size(); ++i) {
    EXPECT_EQ(a.entities[i].name, b.entities[i].name);
  }
  for (size_t i = 0; i < a.facts.size(); ++i) {
    EXPECT_EQ(a.facts[i].subject, b.facts[i].subject);
    EXPECT_EQ(a.facts[i].object, b.facts[i].object);
    EXPECT_EQ(a.facts[i].in_kg, b.facts[i].in_kg);
  }
}

TEST(KgGeneratorTest, DifferentSeedsDiffer) {
  World a = KgGenerator::Generate(SmallSpec(7));
  World b = KgGenerator::Generate(SmallSpec(8));
  bool differs = a.facts.size() != b.facts.size();
  for (size_t i = 0; !differs && i < a.facts.size(); ++i) {
    differs = a.facts[i].object != b.facts[i].object;
  }
  EXPECT_TRUE(differs);
}

TEST(KgGeneratorTest, ClassPopulationsMatchSpec) {
  WorldSpec spec = SmallSpec();
  World world = KgGenerator::Generate(spec);
  EXPECT_EQ(world.OfClass(EntityClass::kPerson).size(), spec.num_persons);
  EXPECT_EQ(world.OfClass(EntityClass::kCity).size(), spec.num_cities);
  EXPECT_EQ(world.OfClass(EntityClass::kCountry).size(),
            spec.num_countries);
  EXPECT_EQ(world.OfClass(EntityClass::kUniversity).size(),
            spec.num_universities);
}

TEST(KgGeneratorTest, EntityNamesUniqueAndAliased) {
  World world = KgGenerator::Generate(SmallSpec());
  std::set<std::string> names;
  for (const Entity& e : world.entities) {
    EXPECT_TRUE(names.insert(e.name).second) << "duplicate " << e.name;
    EXPECT_FALSE(e.aliases.empty());
  }
}

TEST(KgGeneratorTest, EveryCityHasACountry) {
  World world = KgGenerator::Generate(SmallSpec());
  for (uint32_t city : world.OfClass(EntityClass::kCity)) {
    uint32_t country = world.CountryOf(city);
    EXPECT_EQ(world.entities[country].cls, EntityClass::kCountry);
  }
}

TEST(KgGeneratorTest, FactsRespectSignatures) {
  World world = KgGenerator::Generate(SmallSpec());
  for (const Fact& f : world.facts) {
    const PredicateSpec& pred = world.spec.predicates[f.predicate];
    EXPECT_EQ(world.entities[f.subject].cls, pred.subject_class);
    EXPECT_EQ(world.entities[f.object].cls, pred.object_class);
    EXPECT_NE(f.subject, f.object);
  }
}

TEST(KgGeneratorTest, HoldoutRateRoughlyHonored) {
  World world = KgGenerator::Generate(SmallSpec());
  size_t held_out = 0;
  for (const Fact& f : world.facts) held_out += !f.in_kg;
  double rate =
      static_cast<double>(held_out) / static_cast<double>(world.facts.size());
  EXPECT_GT(rate, 0.1);  // specs range from 0.05 to 0.7
  EXPECT_LT(rate, 0.6);
}

TEST(KgGeneratorTest, InverseFactsUseInversePredicateName) {
  World world = KgGenerator::Generate(SmallSpec());
  xkg::XkgBuilder builder;
  KgGenerator::PopulateKg(world, &builder);
  auto xkg = builder.Build();
  ASSERT_TRUE(xkg.ok());
  const rdf::Dictionary& dict = xkg->dict();
  // hasStudent must exist in the KG (inverse_rate 0.75 of advisor facts).
  rdf::TermId has_student =
      dict.Find(rdf::TermKind::kResource, "hasStudent");
  EXPECT_NE(has_student, rdf::kNullTerm);
  EXPECT_GT(xkg->store()
                .Match(rdf::kNullTerm, has_student, rdf::kNullTerm)
                .size(),
            0u);
}

TEST(KgGeneratorTest, PopulateMatchesCount) {
  World world = KgGenerator::Generate(SmallSpec());
  xkg::XkgBuilder builder;
  KgGenerator::PopulateKg(world, &builder);
  EXPECT_EQ(builder.pending_kg(), KgGenerator::CountKgFacts(world));
}

TEST(KgGeneratorTest, TypeTriplesForEveryEntity) {
  World world = KgGenerator::Generate(SmallSpec());
  xkg::XkgBuilder builder;
  KgGenerator::PopulateKg(world, &builder);
  auto xkg = builder.Build();
  ASSERT_TRUE(xkg.ok());
  rdf::TermId type =
      xkg->dict().Find(rdf::TermKind::kResource, "type");
  ASSERT_NE(type, rdf::kNullTerm);
  EXPECT_EQ(xkg->store().Match(rdf::kNullTerm, type, rdf::kNullTerm).size(),
            world.entities.size());
}

TEST(WorldSpecTest, ScaledPreservesMinimums) {
  WorldSpec tiny = WorldSpec::Scaled(100);
  EXPECT_GE(tiny.num_persons, 20u);
  EXPECT_GE(tiny.num_countries, 4u);
  WorldSpec big = WorldSpec::Scaled(50000);
  EXPECT_GT(big.num_persons, tiny.num_persons);
}

TEST(WorldSpecTest, DefaultPredicatesCoverPaperPhenomena) {
  auto preds = WorldSpec::DefaultPredicates();
  bool has_inverse = false, has_coarse = false, has_heavy_holdout = false;
  for (const PredicateSpec& p : preds) {
    if (!p.inverse_name.empty()) has_inverse = true;
    if (p.coarse_object_rate > 0) has_coarse = true;
    if (p.holdout_rate >= 0.5) has_heavy_holdout = true;
    EXPECT_FALSE(p.paraphrases.empty()) << p.name;
  }
  EXPECT_TRUE(has_inverse);        // user B
  EXPECT_TRUE(has_coarse);         // user A
  EXPECT_TRUE(has_heavy_holdout);  // users C, D
}

}  // namespace
}  // namespace trinit::synth
