// Unit tests for the engine-level serving cache: answer-LRU mechanics
// (bounded capacity, eviction order, shared immutable bodies served
// without a deep copy), key construction (every answer-changing knob
// and the generation are in), and the plan cache's lazy generation
// invalidation.

#include "serve/serving_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "query/parser.h"
#include "testing/paper_world.h"

namespace trinit::serve {
namespace {

query::Query Parse(const char* text) {
  auto r = query::Parser::Parse(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return std::move(r).value();
}

std::shared_ptr<const topk::TopKResult> FakeResult(rdf::TermId value,
                                                   size_t pulled) {
  topk::TopKResult result;
  result.projection = {"x"};
  topk::Answer ans;
  ans.binding = query::Binding(1);
  ans.binding.Bind(0, value);
  ans.score = -0.5;
  result.answers.push_back(std::move(ans));
  result.stats.items_pulled = pulled;
  return std::make_shared<const topk::TopKResult>(std::move(result));
}

TEST(AnswerKeyTest, DistinguishesEveryAnswerChangingKnob) {
  query::Query q = Parse("?x bornIn Ulm");
  scoring::ScorerOptions scorer;
  topk::ProcessorOptions processor;
  const std::string base = ServingCache::AnswerKey(q, scorer, processor, 0);

  // Same inputs -> same key (the cache's whole premise).
  EXPECT_EQ(ServingCache::AnswerKey(q, scorer, processor, 0), base);

  topk::ProcessorOptions k_changed = processor;
  k_changed.k = processor.k + 1;
  EXPECT_NE(ServingCache::AnswerKey(q, scorer, k_changed, 0), base);

  topk::ProcessorOptions relax_off = processor;
  relax_off.enable_relaxation = false;
  EXPECT_NE(ServingCache::AnswerKey(q, scorer, relax_off, 0), base);

  topk::ProcessorOptions depth_changed = processor;
  depth_changed.rewrite.max_depth = processor.rewrite.max_depth + 1;
  EXPECT_NE(ServingCache::AnswerKey(q, scorer, depth_changed, 0), base);

  topk::ProcessorOptions budget_changed = processor;
  budget_changed.join.max_pulls = 7;
  EXPECT_NE(ServingCache::AnswerKey(q, scorer, budget_changed, 0), base);

  scoring::ScorerOptions scorer_changed = scorer;
  scorer_changed.use_idf = false;
  EXPECT_NE(ServingCache::AnswerKey(q, scorer_changed, processor, 0), base);

  // A generation bump changes every key — that is the invalidation.
  EXPECT_NE(ServingCache::AnswerKey(q, scorer, processor, 1), base);

  // A different query, obviously.
  query::Query other = Parse("?x bornIn Germany");
  EXPECT_NE(ServingCache::AnswerKey(other, scorer, processor, 0), base);

  // The wall-clock deadline is deliberately NOT part of the key:
  // truncated runs are never stored, complete ones serve any deadline.
  topk::ProcessorOptions deadline_changed = processor;
  deadline_changed.deadline_ms = 123.0;
  EXPECT_EQ(ServingCache::AnswerKey(q, scorer, deadline_changed, 0), base);
}

TEST(ServingCacheTest, AnswerRoundtripSharesTheStoredBody) {
  ServingCache cache;
  EXPECT_EQ(cache.LookupAnswer("k1"), nullptr);
  std::shared_ptr<const topk::TopKResult> stored =
      FakeResult(42, /*pulled=*/99);
  cache.StoreAnswer("k1", stored);

  auto hit = cache.LookupAnswer("k1");
  ASSERT_NE(hit, nullptr);
  // Shared immutable body: the very pointer that was stored comes back —
  // no deep copy of the answers on either side of the cache. Its
  // embedded stats are the stored run's; per-request zero-work stats
  // are the serving layer's copy-on-serve concern
  // (core::QueryResponse::stats).
  EXPECT_EQ(hit.get(), stored.get());
  ASSERT_EQ(hit->answers.size(), 1u);
  EXPECT_EQ(hit->answers[0].binding.Get(0), 42u);
  EXPECT_EQ(hit->projection, std::vector<std::string>{"x"});
  EXPECT_EQ(hit->stats.items_pulled, 99u);

  ServingCache::Counters c = cache.counters();
  EXPECT_EQ(c.answer_hits, 1u);
  EXPECT_EQ(c.answer_misses, 1u);
  EXPECT_EQ(c.answer_insertions, 1u);
  EXPECT_EQ(c.answer_entries, 1u);
}

TEST(ServingCacheTest, LruEvictsOldestWithinCapacity) {
  ServingCacheOptions options;
  options.answer_capacity = 2;
  options.num_shards = 1;  // single shard: capacity is exact
  ServingCache cache(options);

  cache.StoreAnswer("a", FakeResult(1, 0));
  cache.StoreAnswer("b", FakeResult(2, 0));
  ASSERT_NE(cache.LookupAnswer("a"), nullptr);  // refresh a; b is LRU
  cache.StoreAnswer("c", FakeResult(3, 0));     // evicts b

  EXPECT_NE(cache.LookupAnswer("a"), nullptr);
  EXPECT_EQ(cache.LookupAnswer("b"), nullptr);
  EXPECT_NE(cache.LookupAnswer("c"), nullptr);

  ServingCache::Counters c = cache.counters();
  EXPECT_EQ(c.answer_evictions, 1u);
  EXPECT_EQ(c.answer_entries, 2u);
}

TEST(ServingCacheTest, CapacityBelowShardCountIsHonoredExactly) {
  ServingCacheOptions options;
  options.answer_capacity = 2;
  options.num_shards = 8;  // clamped to 2 answer shards internally
  ServingCache cache(options);
  for (int i = 0; i < 10; ++i) {
    cache.StoreAnswer("k" + std::to_string(i), FakeResult(i + 1, 0));
  }
  EXPECT_LE(cache.counters().answer_entries, 2u);

  ServingCacheOptions zero;
  zero.answer_capacity = 0;  // means: no answer caching at all
  ServingCache none(zero);
  none.StoreAnswer("k", FakeResult(1, 0));
  EXPECT_EQ(none.LookupAnswer("k"), nullptr);
  EXPECT_EQ(none.counters().answer_entries, 0u);
}

TEST(ServingCacheTest, DisabledCacheStoresAndServesNothing) {
  ServingCacheOptions options;
  options.enabled = false;
  ServingCache cache(options);
  cache.StoreAnswer("k", FakeResult(1, 0));
  EXPECT_EQ(cache.LookupAnswer("k"), nullptr);
  EXPECT_EQ(cache.plan_cache(), nullptr);
  EXPECT_EQ(cache.counters().answer_entries, 0u);
}

TEST(ServingCacheTest, BumpGenerationInvalidatesPlansLazily) {
  xkg::Xkg xkg = testing::BuildPaperXkg();
  ServingCache cache;
  const plan::PlanCache* plans = cache.plan_cache();
  ASSERT_NE(plans, nullptr);

  query::Query q = Parse("?x bornIn Ulm");
  q.ResolveAgainst(xkg.dict());
  query::VarTable vars(q);

  auto p1 = plans->Get(q, vars, xkg);
  auto p1_again = plans->Get(q, vars, xkg);
  EXPECT_EQ(p1.get(), p1_again.get());
  EXPECT_EQ(cache.counters().plan_hits, 1u);

  cache.BumpGeneration();
  EXPECT_EQ(cache.generation(), 1u);
  // Lazy invalidation: the bump itself sweeps nothing; the next lookup
  // reaps the shard's stale entries and recompiles.
  auto p2 = plans->Get(q, vars, xkg);
  EXPECT_NE(p1.get(), p2.get());
  ServingCache::Counters c = cache.counters();
  EXPECT_EQ(c.plan_invalidated, 1u);
  EXPECT_EQ(c.plan_misses, 2u);
  // The stale entry was reaped, not just shadowed: one live entry.
  EXPECT_EQ(c.plan_entries, 1u);
  // And the recompiled entry is cached again under the new generation.
  auto p2_again = plans->Get(q, vars, xkg);
  EXPECT_EQ(p2.get(), p2_again.get());
}

TEST(ServingCacheTest, InitialGenerationSeedsBothLayers) {
  // A snapshot-restored engine continues the saved generation sequence:
  // the answer keys and the plan cache both start at the stamp.
  ServingCache cache(ServingCacheOptions{}, /*initial_generation=*/41);
  EXPECT_EQ(cache.generation(), 41u);
  ASSERT_NE(cache.plan_cache(), nullptr);
  EXPECT_EQ(cache.plan_cache()->generation(), 41u);
  cache.BumpGeneration();
  EXPECT_EQ(cache.generation(), 42u);
  EXPECT_EQ(cache.plan_cache()->generation(), 42u);
}

TEST(ServingCacheTest, ConcurrentStoresAndLookupsStayCoherent) {
  ServingCacheOptions options;
  options.answer_capacity = 16;
  options.num_shards = 4;
  ServingCache cache(options);

  constexpr int kThreads = 8;
  constexpr int kRounds = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t]() {
      for (int i = 0; i < kRounds; ++i) {
        std::string key = "q" + std::to_string((t + i) % 6);
        auto hit = cache.LookupAnswer(key);
        if (hit != nullptr) {
          // Values are keyed deterministically; a hit must carry the
          // key's value, never a torn or foreign one.
          ASSERT_EQ(hit->answers[0].binding.Get(0),
                    static_cast<rdf::TermId>((t + i) % 6 + 1));
        } else {
          cache.StoreAnswer(key, FakeResult((t + i) % 6 + 1, 0));
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  ServingCache::Counters c = cache.counters();
  EXPECT_EQ(c.answer_hits + c.answer_misses,
            static_cast<size_t>(kThreads * kRounds));
  EXPECT_LE(c.answer_entries, 16u);
}

}  // namespace
}  // namespace trinit::serve
