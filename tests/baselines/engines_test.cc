#include <gtest/gtest.h>

#include "baselines/exact_engine.h"
#include "baselines/keyword_engine.h"
#include "query/parser.h"
#include "testing/paper_world.h"

namespace trinit::baselines {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  BaselinesTest() : xkg_(testing::BuildPaperXkg()) {}

  query::Query Parse(const char* text) {
    auto r = query::Parser::Parse(text, &xkg_.dict());
    EXPECT_TRUE(r.ok()) << r.status();
    return std::move(r).value();
  }

  xkg::Xkg xkg_;
};

TEST_F(BaselinesTest, ExactEngineAnswersDirectFacts) {
  ExactEngine engine(xkg_, {});
  auto r = engine.Answer(Parse("AlbertEinstein bornIn ?x"), 5);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->answers.size(), 1u);
  EXPECT_EQ(xkg_.dict().DebugLabel(r->ValueAt(0, 0)), "Ulm");
}

TEST_F(BaselinesTest, ExactEngineCannotRelax) {
  ExactEngine engine(xkg_, {});
  // User A's query: strict matching finds nothing.
  auto r = engine.Answer(Parse("?x bornIn Germany"), 5);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->answers.empty());
  // User B likewise.
  auto r2 = engine.Answer(Parse("AlbertEinstein hasAdvisor ?x"), 5);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->answers.empty());
}

TEST_F(BaselinesTest, ExactEngineStillSeesXkgTokens) {
  // Exact over the *extended* KG answers user D without relaxation.
  ExactEngine engine(xkg_, {});
  auto r = engine.Answer(Parse("AlbertEinstein 'won nobel for' ?x"), 5);
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(r->answers.empty());
}

TEST_F(BaselinesTest, KeywordEngineFindsCooccurringEntities) {
  KeywordEngine engine(xkg_, {});
  auto r = engine.Answer(Parse("AlbertEinstein affiliation ?x"), 5);
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(r->answers.empty());
  // IAS co-occurs with AlbertEinstein + affiliation; it should rank
  // among the top answers.
  bool found_ias = false;
  for (size_t i = 0; i < r->answers.size(); ++i) {
    if (xkg_.dict().DebugLabel(r->ValueAt(i, 0)) == "IAS") {
      found_ias = true;
    }
  }
  EXPECT_TRUE(found_ias);
}

TEST_F(BaselinesTest, KeywordEngineIgnoresJoinStructure) {
  KeywordEngine engine(xkg_, {});
  // The join query: a structure-aware engine needs Princeton; the
  // keyword engine just returns entities co-occurring with the
  // constants — it may or may not hit Princeton, but it must NOT verify
  // the join. We assert it also returns entities that do not satisfy
  // the join (evidence of structure-blindness) or misses the join
  // altogether.
  auto r = engine.Answer(
      Parse("SELECT ?x WHERE AlbertEinstein affiliation ?x ; ?x member "
            "IvyLeague"),
      10);
  ASSERT_TRUE(r.ok());
  bool has_non_join_answer = false;
  for (size_t i = 0; i < r->answers.size(); ++i) {
    std::string label = xkg_.dict().DebugLabel(r->ValueAt(i, 0));
    if (label != "PrincetonUniversity") has_non_join_answer = true;
  }
  EXPECT_TRUE(r->answers.empty() || has_non_join_answer);
}

TEST_F(BaselinesTest, KeywordEngineExpandsTokensSoftly) {
  KeywordEngine engine(xkg_, {});
  auto r = engine.Answer(Parse("?x 'lectured' ?y"), 5);
  ASSERT_TRUE(r.ok());
  // 'lectured' soft-matches 'lectured at'; Einstein and Princeton
  // co-occur with it.
  ASSERT_FALSE(r->answers.empty());
}

TEST_F(BaselinesTest, KeywordEngineRespectsK) {
  KeywordEngine engine(xkg_, {});
  auto r = engine.Answer(Parse("AlbertEinstein ?p ?o"), 2);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r->answers.size(), 2u);
}

TEST_F(BaselinesTest, KeywordEngineEmptyForUnknownConstants) {
  KeywordEngine engine(xkg_, {});
  auto r = engine.Answer(Parse("NoSuchEntity unknownPred ?x"), 5);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->answers.empty());
}

TEST_F(BaselinesTest, EnginesRejectInvalidQueries) {
  ExactEngine exact(xkg_, {});
  KeywordEngine keyword(xkg_, {});
  query::Query empty;
  EXPECT_FALSE(exact.Answer(empty, 5).ok());
  EXPECT_FALSE(keyword.Answer(empty, 5).ok());
}

}  // namespace
}  // namespace trinit::baselines
