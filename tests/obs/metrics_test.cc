// The metrics registry's contracts: striped counters stay exact under
// concurrent increments, unbound handles are no-ops, registration is
// idempotent by name, histograms bucket and interpolate correctly, and
// the two wire renderings agree with the snapshot.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "obs/exposition.h"
#include "obs/metrics.h"

namespace trinit::obs {
namespace {

TEST(MetricsTest, CounterCountsExactlyAcrossThreads) {
  MetricsRegistry registry;
  Counter counter = registry.RegisterCounter("test_total", "help");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.Value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsTest, CounterIncrementByNAndZero) {
  MetricsRegistry registry;
  Counter counter = registry.RegisterCounter("n_total", "help");
  counter.Increment(41);
  counter.Increment(0);  // no-op by contract
  counter.Increment();
  EXPECT_EQ(counter.Value(), 42u);
}

TEST(MetricsTest, UnboundHandlesAreNoOps) {
  Counter counter;
  Gauge gauge;
  Histogram histogram;
  EXPECT_FALSE(counter.bound());
  EXPECT_FALSE(gauge.bound());
  EXPECT_FALSE(histogram.bound());
  counter.Increment(7);
  EXPECT_EQ(counter.Value(), 0u);
  EXPECT_EQ(gauge.Add(5), 0);
  gauge.Set(9);
  gauge.UpdateMax(11);
  EXPECT_EQ(gauge.Value(), 0);
  histogram.Observe(3.0);  // must not crash
}

TEST(MetricsTest, GaugeAddSetAndUpdateMax) {
  MetricsRegistry registry;
  Gauge gauge = registry.RegisterGauge("test_gauge", "help");
  EXPECT_EQ(gauge.Add(3), 3);
  EXPECT_EQ(gauge.Add(-1), 2);
  gauge.Set(10);
  EXPECT_EQ(gauge.Value(), 10);
  gauge.UpdateMax(7);  // lower: no change
  EXPECT_EQ(gauge.Value(), 10);
  gauge.UpdateMax(15);
  EXPECT_EQ(gauge.Value(), 15);
}

TEST(MetricsTest, GaugeGuardTracksInFlightAndPeak) {
  MetricsRegistry registry;
  Gauge active = registry.RegisterGauge("active", "help");
  Gauge peak = registry.RegisterGauge("peak", "help");
  {
    GaugeGuard outer(active, peak);
    EXPECT_EQ(active.Value(), 1);
    {
      GaugeGuard inner(active, peak);
      EXPECT_EQ(active.Value(), 2);
    }
    EXPECT_EQ(active.Value(), 1);
  }
  EXPECT_EQ(active.Value(), 0);
  EXPECT_EQ(peak.Value(), 2);
}

TEST(MetricsTest, HistogramBucketsAndSum) {
  MetricsRegistry registry;
  Histogram hist =
      registry.RegisterHistogram("test_ms", "help", {1.0, 10.0, 100.0});
  hist.Observe(0.5);    // <= 1
  hist.Observe(1.0);    // <= 1 (bounds are inclusive upper)
  hist.Observe(5.0);    // <= 10
  hist.Observe(500.0);  // +Inf
  const MetricsSnapshot snapshot = registry.Snapshot();
  const MetricsSnapshot::Metric* m = snapshot.Find("test_ms");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->kind, MetricKind::kHistogram);
  EXPECT_EQ(m->count, 4u);
  EXPECT_DOUBLE_EQ(m->sum, 506.5);
  ASSERT_EQ(m->buckets.size(), 4u);  // 3 finite + Inf, cumulative
  EXPECT_EQ(m->buckets[0].count, 2u);
  EXPECT_EQ(m->buckets[1].count, 3u);
  EXPECT_EQ(m->buckets[2].count, 3u);
  EXPECT_TRUE(std::isinf(m->buckets[3].le));
  EXPECT_EQ(m->buckets[3].count, 4u);
}

TEST(MetricsTest, HistogramSumExactUnderConcurrentObserve) {
  MetricsRegistry registry;
  Histogram hist = registry.RegisterHistogram("sum_ms", "help", {1.0});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([hist] {
      for (int i = 0; i < kPerThread; ++i) hist.Observe(0.25);
    });
  }
  for (std::thread& t : threads) t.join();
  const MetricsSnapshot snapshot = registry.Snapshot();
  const MetricsSnapshot::Metric* m = snapshot.Find("sum_ms");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->count, static_cast<uint64_t>(kThreads) * kPerThread);
  // 0.25 is exactly representable: the CAS-accumulated sum is exact.
  EXPECT_DOUBLE_EQ(m->sum, 0.25 * kThreads * kPerThread);
}

TEST(MetricsTest, QuantileInterpolatesWithinBucket) {
  MetricsRegistry registry;
  Histogram hist =
      registry.RegisterHistogram("q_ms", "help", {10.0, 20.0, 30.0});
  for (int i = 0; i < 10; ++i) hist.Observe(5.0);   // first bucket
  for (int i = 0; i < 10; ++i) hist.Observe(15.0);  // second bucket
  const MetricsSnapshot snapshot = registry.Snapshot();
  const MetricsSnapshot::Metric* m = snapshot.Find("q_ms");
  ASSERT_NE(m, nullptr);
  // p50 sits at the first/second bucket boundary; p95 inside the second.
  EXPECT_NEAR(m->Quantile(0.5), 10.0, 1.0);
  EXPECT_GT(m->Quantile(0.95), 10.0);
  EXPECT_LE(m->Quantile(0.95), 20.0);
  // Empty histogram answers 0.
  Histogram empty = registry.RegisterHistogram("empty_ms", "help", {1.0});
  EXPECT_EQ(registry.Snapshot().Find("empty_ms")->Quantile(0.5), 0.0);
}

TEST(MetricsTest, RegistrationIsIdempotentByName) {
  MetricsRegistry registry;
  Counter a = registry.RegisterCounter("same_total", "help");
  Counter b = registry.RegisterCounter("same_total", "help");
  a.Increment(2);
  b.Increment(3);
  EXPECT_EQ(a.Value(), 5u);
  EXPECT_EQ(b.Value(), 5u);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(MetricsTest, SnapshotPreservesRegistrationOrder) {
  MetricsRegistry registry;
  registry.RegisterCounter("first_total", "1");
  registry.RegisterGauge("second", "2");
  registry.RegisterHistogram("third_ms", "3", {1.0});
  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.metrics.size(), 3u);
  EXPECT_EQ(snapshot.metrics[0].name, "first_total");
  EXPECT_EQ(snapshot.metrics[1].name, "second");
  EXPECT_EQ(snapshot.metrics[2].name, "third_ms");
  EXPECT_EQ(snapshot.Find("nope"), nullptr);
}

TEST(MetricsTest, PrometheusRenderingShape) {
  MetricsRegistry registry;
  Counter c = registry.RegisterCounter("trinit_reqs_total", "Requests.");
  c.Increment(3);
  Gauge g = registry.RegisterGauge("trinit_active", "In flight.");
  g.Set(2);
  Histogram h = registry.RegisterHistogram("trinit_ms", "Latency.", {1.0});
  h.Observe(0.5);
  h.Observe(4.0);
  const std::string text = RenderPrometheus(registry.Snapshot());
  EXPECT_NE(text.find("# HELP trinit_reqs_total Requests.\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE trinit_reqs_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("trinit_reqs_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE trinit_active gauge\n"), std::string::npos);
  EXPECT_NE(text.find("trinit_active 2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE trinit_ms histogram\n"), std::string::npos);
  EXPECT_NE(text.find("trinit_ms_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("trinit_ms_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("trinit_ms_count 2\n"), std::string::npos);
}

TEST(MetricsTest, JsonRenderingShape) {
  MetricsRegistry registry;
  Counter c = registry.RegisterCounter("a_total", "A \"quoted\" help");
  c.Increment();
  registry.RegisterHistogram("b_ms", "B", {2.0});
  const std::string json = RenderJson(registry.Snapshot());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"name\":\"a_total\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"counter\""), std::string::npos);
  EXPECT_NE(json.find("A \\\"quoted\\\" help"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"le\":\"+Inf\""), std::string::npos);
}

TEST(MetricsTest, ConcurrentScrapeDuringIncrements) {
  MetricsRegistry registry;
  Counter counter = registry.RegisterCounter("busy_total", "help");
  Histogram hist = registry.RegisterHistogram("busy_ms", "help", {1.0});
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([counter, hist] {
      for (int i = 0; i < 20000; ++i) {
        counter.Increment();
        hist.Observe(0.5);
      }
    });
  }
  uint64_t last = 0;
  for (int i = 0; i < 50; ++i) {
    const MetricsSnapshot snapshot = registry.Snapshot();
    const MetricsSnapshot::Metric* m = snapshot.Find("busy_total");
    ASSERT_NE(m, nullptr);
    // Each counter is monotone across scrapes even mid-storm.
    EXPECT_GE(static_cast<uint64_t>(m->value), last);
    last = static_cast<uint64_t>(m->value);
  }
  for (std::thread& t : writers) t.join();
  EXPECT_EQ(counter.Value(), 80000u);
}

}  // namespace
}  // namespace trinit::obs
