// TraceSpan's JSON schema (name/start/duration/counters/children, with
// correct escaping and number formatting) and the slow-query log's
// bounded-ring contract (capacity, oldest-first order, lifetime count).

#include <gtest/gtest.h>

#include <string>

#include "obs/slow_query_log.h"
#include "obs/trace_span.h"

namespace trinit::obs {
namespace {

TEST(TraceSpanTest, JsonShape) {
  TraceSpan root;
  root.name = "execute";
  root.duration_ms = 2.5;
  root.AddCounter("items_pulled", 311);
  root.AddCounter("share", 0.125);
  root.AddChild("parse", 0.0, 0.25);
  TraceSpan& process = root.AddChild("process", 0.25, 2.0);
  process.AddCounter("pulls", 7);

  const std::string json = root.ToJson();
  EXPECT_EQ(json,
            "{\"name\":\"execute\",\"start_ms\":0,\"duration_ms\":2.5,"
            "\"counters\":[[\"items_pulled\",311],[\"share\",0.125]],"
            "\"children\":["
            "{\"name\":\"parse\",\"start_ms\":0,\"duration_ms\":0.25,"
            "\"counters\":[],\"children\":[]},"
            "{\"name\":\"process\",\"start_ms\":0.25,\"duration_ms\":2,"
            "\"counters\":[[\"pulls\",7]],\"children\":[]}]}");
}

TEST(TraceSpanTest, JsonEscapesSpecials) {
  TraceSpan span;
  span.name = "we\"ird\\name\n\ttab";
  const std::string json = span.ToJson();
  EXPECT_NE(json.find("we\\\"ird\\\\name\\n\\ttab"), std::string::npos);
}

TEST(TraceSpanTest, NumberFormatting) {
  EXPECT_EQ(FormatJsonNumber(311.0), "311");
  EXPECT_EQ(FormatJsonNumber(0.0), "0");
  EXPECT_EQ(FormatJsonNumber(0.125), "0.125");
  EXPECT_EQ(FormatJsonNumber(-4.0), "-4");
}

TEST(TraceSpanTest, PrettyIndentsChildren) {
  TraceSpan root;
  root.name = "execute";
  root.duration_ms = 1.0;
  root.AddChild("parse", 0.0, 0.1);
  const std::string pretty = root.ToPretty();
  EXPECT_NE(pretty.find("execute 1.000ms"), std::string::npos);
  EXPECT_NE(pretty.find("\n  parse 0.100ms @0.000ms"), std::string::npos);
}

SlowQueryRecord MakeRecord(const std::string& query, double wall_ms) {
  SlowQueryRecord record;
  record.query = query;
  record.wall_ms = wall_ms;
  return record;
}

TEST(SlowQueryLogTest, ThresholdGatesRecording) {
  SlowQueryLog log(/*threshold_ms=*/10.0, /*capacity=*/4);
  EXPECT_TRUE(log.enabled());
  EXPECT_FALSE(log.ShouldRecord(9.99));
  EXPECT_TRUE(log.ShouldRecord(10.0));
  EXPECT_TRUE(log.ShouldRecord(250.0));

  SlowQueryLog disabled(/*threshold_ms=*/0.0, /*capacity=*/4);
  EXPECT_FALSE(disabled.enabled());
  EXPECT_FALSE(disabled.ShouldRecord(1e9));
  SlowQueryLog no_capacity(/*threshold_ms=*/10.0, /*capacity=*/0);
  EXPECT_FALSE(no_capacity.enabled());
}

TEST(SlowQueryLogTest, RingOverwritesOldestKeepsOrder) {
  SlowQueryLog log(/*threshold_ms=*/1.0, /*capacity=*/3);
  for (int i = 1; i <= 5; ++i) {
    log.Record(MakeRecord("q" + std::to_string(i), i * 10.0));
  }
  EXPECT_EQ(log.total_recorded(), 5u);
  const auto entries = log.Entries();
  ASSERT_EQ(entries.size(), 3u);  // capacity bound held
  // Oldest-first, the newest three, with lifetime sequence numbers.
  EXPECT_EQ(entries[0].query, "q3");
  EXPECT_EQ(entries[0].sequence, 3u);
  EXPECT_EQ(entries[1].query, "q4");
  EXPECT_EQ(entries[2].query, "q5");
  EXPECT_EQ(entries[2].sequence, 5u);
}

TEST(SlowQueryLogTest, PartialRingIsOldestFirst) {
  SlowQueryLog log(/*threshold_ms=*/1.0, /*capacity=*/8);
  log.Record(MakeRecord("a", 2.0));
  log.Record(MakeRecord("b", 3.0));
  const auto entries = log.Entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].query, "a");
  EXPECT_EQ(entries[1].query, "b");
  EXPECT_EQ(log.total_recorded(), 2u);
}

TEST(SlowQueryLogTest, RecordCarriesSpanTree) {
  SlowQueryLog log(/*threshold_ms=*/1.0, /*capacity=*/2);
  SlowQueryRecord record = MakeRecord("?x bornIn Ulm", 300.0);
  record.span.name = "execute";
  record.span.AddChild("process", 0.1, 299.0);
  log.Record(std::move(record));
  const auto entries = log.Entries();
  ASSERT_EQ(entries.size(), 1u);
  ASSERT_EQ(entries[0].span.children.size(), 1u);
  EXPECT_EQ(entries[0].span.children[0].name, "process");
}

}  // namespace
}  // namespace trinit::obs
