#include "explain/explanation.h"

#include <gtest/gtest.h>

#include "query/parser.h"
#include "testing/paper_world.h"
#include "topk/topk_processor.h"

namespace trinit::explain {
namespace {

class ExplanationTest : public ::testing::Test {
 protected:
  ExplanationTest()
      : xkg_(testing::BuildPaperXkg()),
        rules_(testing::BuildPaperRules()) {}

  topk::TopKResult Run(const char* text) {
    topk::ProcessorOptions opts;
    opts.k = 5;
    topk::TopKProcessor processor(xkg_, rules_, {}, opts);
    auto q = query::Parser::Parse(text, &xkg_.dict());
    EXPECT_TRUE(q.ok());
    auto r = processor.Answer(*q);
    EXPECT_TRUE(r.ok());
    return std::move(r).value();
  }

  xkg::Xkg xkg_;
  relax::RuleSet rules_;
};

TEST_F(ExplanationTest, UserCExplanationHasAllThreeParts) {
  // Paper §5: the explanation shows (i) KG triples, (ii) XKG triples
  // with provenance, (iii) rules invoked.
  topk::TopKResult result = Run(
      "SELECT ?x WHERE AlbertEinstein affiliation ?x ; ?x member "
      "IvyLeague");
  ASSERT_FALSE(result.answers.empty());
  ExplanationBuilder builder(xkg_);
  Explanation ex = builder.Explain(result.projection, result.answers[0]);

  EXPECT_EQ(ex.answer_rendering, "?x = PrincetonUniversity");
  // (i) KG triples: affiliation IAS and/or member IvyLeague.
  EXPECT_FALSE(ex.kg_triples.empty());
  // (ii) XKG triple with its supporting sentence.
  ASSERT_FALSE(ex.xkg_triples.empty());
  bool has_provenance = false;
  for (const auto& t : ex.xkg_triples) {
    if (!t.provenance.empty()) has_provenance = true;
  }
  EXPECT_TRUE(has_provenance);
  // (iii) the relaxation rule.
  ASSERT_FALSE(ex.rules.empty());
}

TEST_F(ExplanationTest, KgOnlyAnswerHasNoXkgSection) {
  topk::TopKResult result = Run("AlbertEinstein bornIn ?x");
  ASSERT_FALSE(result.answers.empty());
  ExplanationBuilder builder(xkg_);
  Explanation ex = builder.Explain(result.projection, result.answers[0]);
  EXPECT_FALSE(ex.kg_triples.empty());
  EXPECT_TRUE(ex.xkg_triples.empty());
  EXPECT_TRUE(ex.rules.empty());
}

TEST_F(ExplanationTest, SoftMatchRecordedAsSubstitution) {
  topk::TopKResult result = Run("AlbertEinstein 'won a nobel prize' ?x");
  ASSERT_FALSE(result.answers.empty());
  ExplanationBuilder builder(xkg_);
  Explanation ex = builder.Explain(result.projection, result.answers[0]);
  ASSERT_FALSE(ex.substitutions.empty());
  EXPECT_EQ(ex.substitutions[0].matched_phrase, "won nobel for");
  EXPECT_GT(ex.substitutions[0].similarity, 0.0);
}

TEST_F(ExplanationTest, ToStringRendersSections) {
  topk::TopKResult result = Run(
      "SELECT ?x WHERE AlbertEinstein affiliation ?x ; ?x member "
      "IvyLeague");
  ASSERT_FALSE(result.answers.empty());
  ExplanationBuilder builder(xkg_);
  std::string text =
      builder.Explain(result.projection, result.answers[0]).ToString();
  EXPECT_NE(text.find("Answer: ?x = PrincetonUniversity"),
            std::string::npos);
  EXPECT_NE(text.find("XKG triples (Open IE):"), std::string::npos);
  EXPECT_NE(text.find("Relaxation rules invoked:"), std::string::npos);
  EXPECT_NE(text.find("[doc "), std::string::npos);
}

TEST_F(ExplanationTest, DuplicateEvidenceDeduplicated) {
  topk::TopKResult result = Run("AlbertEinstein affiliation ?x");
  ASSERT_FALSE(result.answers.empty());
  ExplanationBuilder builder(xkg_);
  Explanation ex = builder.Explain(result.projection, result.answers[0]);
  std::set<std::string> rendered;
  for (const auto& t : ex.kg_triples) {
    EXPECT_TRUE(rendered.insert(t.rendered).second)
        << "duplicate: " << t.rendered;
  }
}

}  // namespace
}  // namespace trinit::explain
