#include "relax/relatedness_miner.h"

#include <gtest/gtest.h>

#include "xkg/xkg_builder.h"

namespace trinit::relax {
namespace {

// World where `affiliation` and `memberOfInstitute` never share a
// (subject, object) pair (so the synonym miner is blind to them) but do
// range over the same subjects: distributional relatedness only.
xkg::Xkg DistributionalWorld() {
  xkg::XkgBuilder b;
  for (int i = 0; i < 6; ++i) {
    std::string person = "P" + std::to_string(i);
    b.AddKgFact(person, "affiliation", "U" + std::to_string(i % 2));
    b.AddKgFact(person, "memberOfInstitute", "I" + std::to_string(i % 2));
  }
  // An unrelated predicate over different subjects.
  for (int i = 0; i < 6; ++i) {
    b.AddKgFact("C" + std::to_string(i), "locatedIn", "Country0");
  }
  auto r = b.Build();
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

const Rule* FindRule(const RuleSet& rules, const std::string& name) {
  for (const Rule& rule : rules.rules()) {
    if (rule.name == name) return &rule;
  }
  return nullptr;
}

TEST(RelatednessMinerTest, FindsDistributionallyRelatedPredicates) {
  xkg::Xkg xkg = DistributionalWorld();
  RelatednessMiner::Options opts;
  opts.min_weight = 0.1;
  RelatednessMiner miner(opts);
  RuleSet rules;
  ASSERT_TRUE(miner.Generate(xkg, &rules).ok());

  // affiliation and memberOfInstitute share all 6 subjects (cos = 1)
  // and no objects... objects U0/U1 vs I0/I1: cos = 0 -> weight 0.
  // Hmm — so the object cosine matters: these predicates have disjoint
  // object sets. The rule must NOT fire.
  EXPECT_EQ(FindRule(rules, "rel:affiliation->memberOfInstitute"),
            nullptr);
}

TEST(RelatednessMinerTest, RequiresBothSidesRelated) {
  // Two paraphrase-ish predicates over the same subjects AND objects,
  // but interleaved so pairs never coincide.
  xkg::XkgBuilder b;
  for (int i = 0; i < 6; ++i) {
    std::string person = "P" + std::to_string(i);
    b.AddKgFact(person, "p1", "U" + std::to_string(i % 3));
    b.AddKgFact(person, "p2", "U" + std::to_string((i + 1) % 3));
  }
  auto xkg = b.Build();
  ASSERT_TRUE(xkg.ok());

  RelatednessMiner::Options opts;
  opts.min_weight = 0.2;
  RelatednessMiner miner(opts);
  RuleSet rules;
  ASSERT_TRUE(miner.Generate(*xkg, &rules).ok());
  const Rule* rule = FindRule(rules, "rel:p1->p2");
  ASSERT_NE(rule, nullptr);
  // cos(subjects) = 1, cos(objects) = 1 -> weight = damping = 0.5.
  EXPECT_DOUBLE_EQ(rule->weight, 0.5);
  EXPECT_EQ(rule->kind, RuleKind::kOperator);
}

TEST(RelatednessMinerTest, MinSupportFiltersSparsePredicates) {
  xkg::XkgBuilder b;
  b.AddKgFact("P0", "rare1", "X");
  b.AddKgFact("P0", "rare2", "X");
  auto xkg = b.Build();
  ASSERT_TRUE(xkg.ok());
  RelatednessMiner::Options opts;
  opts.min_support = 3;  // each predicate has 1 subject
  opts.min_weight = 0.0;
  RelatednessMiner miner(opts);
  RuleSet rules;
  ASSERT_TRUE(miner.Generate(*xkg, &rules).ok());
  EXPECT_EQ(rules.size(), 0u);
}

TEST(RelatednessMinerTest, WeightsNeverExceedDamping) {
  xkg::Xkg xkg = DistributionalWorld();
  RelatednessMiner::Options opts;
  opts.min_weight = 0.0;
  opts.damping = 0.5;
  RelatednessMiner miner(opts);
  RuleSet rules;
  ASSERT_TRUE(miner.Generate(xkg, &rules).ok());
  for (const Rule& rule : rules.rules()) {
    EXPECT_LE(rule.weight, 0.5 + 1e-12) << rule.name;
  }
}

}  // namespace
}  // namespace trinit::relax
