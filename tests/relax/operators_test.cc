#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "relax/paraphrase_operator.h"
#include "relax/rule_io.h"
#include "xkg/xkg_builder.h"

namespace trinit::relax {
namespace {

xkg::Xkg EmptyXkg() {
  xkg::XkgBuilder b;
  auto r = b.Build();
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

TEST(ParaphraseOperatorTest, ParsesRepository) {
  auto clusters = ParaphraseOperator::ParseRepository(
      "# comment\n"
      "0.8: affiliation | 'works at' | 'is employed by'\n"
      "0.7: bornIn | 'was born in'\n");
  ASSERT_TRUE(clusters.ok()) << clusters.status();
  ASSERT_EQ(clusters->size(), 2u);
  EXPECT_DOUBLE_EQ((*clusters)[0].weight, 0.8);
  ASSERT_EQ((*clusters)[0].members.size(), 3u);
  EXPECT_EQ((*clusters)[0].members[0].kind, query::Term::Kind::kResource);
  EXPECT_EQ((*clusters)[0].members[1].kind, query::Term::Kind::kToken);
  EXPECT_EQ((*clusters)[0].members[1].text, "works at");
}

TEST(ParaphraseOperatorTest, RejectsMalformedRepositories) {
  EXPECT_FALSE(ParaphraseOperator::ParseRepository("no colon here\n").ok());
  EXPECT_FALSE(ParaphraseOperator::ParseRepository("2.0: a | b\n").ok());
  EXPECT_FALSE(ParaphraseOperator::ParseRepository("x: a | b\n").ok());
  EXPECT_FALSE(ParaphraseOperator::ParseRepository("0.5: lonely\n").ok());
}

TEST(ParaphraseOperatorTest, EmitsAllOrderedPairs) {
  auto op = ParaphraseOperator::FromText(
      "0.8: affiliation | 'works at' | 'is employed by'\n");
  ASSERT_TRUE(op.ok());
  xkg::Xkg xkg = EmptyXkg();
  RuleSet rules;
  ASSERT_TRUE(op->Generate(xkg, &rules).ok());
  // 3 members -> 6 ordered pairs.
  EXPECT_EQ(rules.size(), 6u);
  for (const Rule& rule : rules.rules()) {
    EXPECT_EQ(rule.kind, RuleKind::kOperator);
    EXPECT_DOUBLE_EQ(rule.weight, 0.8);
  }
}

TEST(ParaphraseOperatorTest, BuiltinRepositoryParses) {
  auto op = ParaphraseOperator::FromText(
      ParaphraseOperator::BuiltinRepository());
  ASSERT_TRUE(op.ok()) << op.status();
  EXPECT_GE(op->cluster_count(), 8u);
  xkg::Xkg xkg = EmptyXkg();
  RuleSet rules;
  ASSERT_TRUE(op->Generate(xkg, &rules).ok());
  EXPECT_GT(rules.size(), 20u);
}

TEST(RuleIoTest, SaveLoadRoundTrip) {
  RuleSet rules;
  auto op = ParaphraseOperator::FromText("0.8: a | 'b phrase'\n");
  ASSERT_TRUE(op.ok());
  xkg::Xkg xkg = EmptyXkg();
  ASSERT_TRUE(op->Generate(xkg, &rules).ok());
  ASSERT_EQ(rules.size(), 2u);

  std::string path =
      (std::filesystem::temp_directory_path() / "trinit_rules.tsv")
          .string();
  ASSERT_TRUE(RuleIo::Save(rules, path).ok());

  RuleSet loaded;
  Status s = RuleIo::Load(path, &loaded);
  std::remove(path.c_str());
  ASSERT_TRUE(s.ok()) << s;
  ASSERT_EQ(loaded.size(), rules.size());
  // Kinds and weights survive.
  for (const Rule& rule : loaded.rules()) {
    EXPECT_EQ(rule.kind, RuleKind::kOperator);
    EXPECT_DOUBLE_EQ(rule.weight, 0.8);
  }
}

TEST(RuleIoTest, LoadMergesIntoExistingSet) {
  RuleSet rules;
  ASSERT_TRUE(RuleIo::LoadFromString(
                  "manual\tr1: ?x a ?y => ?x b ?y @ 0.5\n", &rules)
                  .ok());
  ASSERT_TRUE(RuleIo::LoadFromString(
                  "synonym\tr2: ?x a ?y => ?x c ?y @ 0.4\n", &rules)
                  .ok());
  EXPECT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules.CountOfKind(RuleKind::kManual), 1u);
  EXPECT_EQ(rules.CountOfKind(RuleKind::kSynonym), 1u);
}

TEST(RuleIoTest, RejectsBadContent) {
  RuleSet rules;
  EXPECT_FALSE(RuleIo::LoadFromString("onlyonefield\n", &rules).ok());
  EXPECT_FALSE(RuleIo::LoadFromString(
                   "badkind\tr: ?x a ?y => ?x b ?y @ 0.5\n", &rules)
                   .ok());
  EXPECT_FALSE(RuleIo::LoadFromString(
                   "manual\tnot a rule at all\n", &rules)
                   .ok());
}

TEST(RuleIoTest, LoadMissingFileIsIoError) {
  RuleSet rules;
  EXPECT_EQ(RuleIo::Load("/nonexistent/rules.tsv", &rules).code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace trinit::relax
