#include "relax/rewriter.h"

#include <gtest/gtest.h>

#include "query/parser.h"
#include "relax/manual_rules.h"

namespace trinit::relax {
namespace {

query::Query ParseQuery(const char* text) {
  auto r = query::Parser::Parse(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return std::move(r).value();
}

Rule ParseRule(const char* text) {
  auto r = ParseManualRule(text, 1);
  EXPECT_TRUE(r.ok()) << r.status();
  return std::move(r).value();
}

RuleSet MakeRules(std::initializer_list<const char*> lines) {
  RuleSet rules;
  for (const char* line : lines) {
    EXPECT_TRUE(rules.Add(ParseRule(line)).ok());
  }
  return rules;
}

TEST(RewriterTest, AppliesInversionRule) {
  // Figure 4 rule 2 on user B's query.
  RuleSet rules = MakeRules({"?x hasAdvisor ?y => ?y hasStudent ?x @ 1.0"});
  Rewriter rewriter(rules);
  query::Query q = ParseQuery("AlbertEinstein hasAdvisor ?x");
  auto apps = rewriter.ApplyRule(q, rules.rules()[0]);
  ASSERT_EQ(apps.size(), 1u);
  EXPECT_EQ(apps[0].query.ToString(), "?x hasStudent AlbertEinstein");
  EXPECT_DOUBLE_EQ(apps[0].weight, 1.0);
}

TEST(RewriterTest, AppliesExpansionRuleWithFreshVariable) {
  // Figure 4 rule 3 on user C's first pattern.
  RuleSet rules = MakeRules(
      {"?x affiliation ?y => ?x affiliation ?z ; ?z 'housed in' ?y @ 0.8"});
  Rewriter rewriter(rules);
  query::Query q = ParseQuery("AlbertEinstein affiliation ?u");
  auto apps = rewriter.ApplyRule(q, rules.rules()[0]);
  ASSERT_EQ(apps.size(), 1u);
  const query::Query& rw = apps[0].query;
  ASSERT_EQ(rw.patterns().size(), 2u);
  // The fresh variable must not collide with ?u.
  const query::Term& fresh = rw.patterns()[0].o;
  EXPECT_TRUE(fresh.is_variable());
  EXPECT_NE(fresh.text, "u");
  // Second pattern joins fresh var to ?u through the token predicate.
  EXPECT_EQ(rw.patterns()[1].s.text, fresh.text);
  EXPECT_EQ(rw.patterns()[1].p.kind, query::Term::Kind::kToken);
  EXPECT_EQ(rw.patterns()[1].o, query::Term::Variable("u"));
}

TEST(RewriterTest, AppliesMultiPatternLhsRule) {
  // Figure 4 rule 1 needs both bornIn and the type pattern.
  RuleSet rules = MakeRules(
      {"?x bornIn ?y ; ?y type country => ?x bornIn ?z ; ?z type city ; "
       "?z locatedIn ?y @ 1.0"});
  Rewriter rewriter(rules);
  query::Query with_type = ParseQuery("?p bornIn Germany ; Germany type "
                                      "country");
  auto apps = rewriter.ApplyRule(with_type, rules.rules()[0]);
  ASSERT_EQ(apps.size(), 1u);
  EXPECT_EQ(apps[0].query.patterns().size(), 3u);

  // Without the type pattern the rule must not fire.
  query::Query bare = ParseQuery("?p bornIn Germany");
  EXPECT_TRUE(rewriter.ApplyRule(bare, rules.rules()[0]).empty());
}

TEST(RewriterTest, RuleConstantDoesNotMatchQueryVariable) {
  RuleSet rules = MakeRules({"?x bornIn Germany => ?x bornIn Berlin @ 0.5"});
  Rewriter rewriter(rules);
  // Query has a variable where the rule wants the constant Germany.
  query::Query q = ParseQuery("?x bornIn ?where");
  EXPECT_TRUE(rewriter.ApplyRule(q, rules.rules()[0]).empty());
  // With the constant present it fires.
  query::Query q2 = ParseQuery("?x bornIn Germany");
  EXPECT_EQ(rewriter.ApplyRule(q2, rules.rules()[0]).size(), 1u);
}

TEST(RewriterTest, RepeatedRuleVariableRequiresEqualTerms) {
  RuleSet rules =
      MakeRules({"?x knows ?x => ?x 'knows self' ?x @ 0.9"});
  Rewriter rewriter(rules);
  EXPECT_EQ(rewriter.ApplyRule(ParseQuery("?a knows ?a"), rules.rules()[0])
                .size(),
            1u);
  EXPECT_TRUE(rewriter.ApplyRule(ParseQuery("?a knows ?b"), rules.rules()[0])
                  .empty());
}

TEST(RewriterTest, RuleVariableBindsQueryConstant) {
  RuleSet rules = MakeRules({"?x hasAdvisor ?y => ?y hasStudent ?x @ 1.0"});
  Rewriter rewriter(rules);
  query::Query q = ParseQuery("AlbertEinstein hasAdvisor AlfredKleiner");
  auto apps = rewriter.ApplyRule(q, rules.rules()[0]);
  ASSERT_EQ(apps.size(), 1u);
  EXPECT_EQ(apps[0].query.ToString(),
            "AlfredKleiner hasStudent AlbertEinstein");
}

TEST(RewriterTest, MultiplePositionsYieldMultipleApplications) {
  RuleSet rules = MakeRules({"?x p ?y => ?x q ?y @ 0.5"});
  Rewriter rewriter(rules);
  query::Query q = ParseQuery("?a p ?b ; ?b p ?c");
  auto apps = rewriter.ApplyRule(q, rules.rules()[0]);
  EXPECT_EQ(apps.size(), 2u);  // fires on either pattern
}

TEST(RewriterTest, DiscardsApplicationsDroppingProjectionVars) {
  RuleSet rules = MakeRules({"?x p ?y => ?x q C @ 0.5"});
  Rewriter rewriter(rules);
  // ?y is projected but the RHS loses it.
  auto parsed = query::Parser::Parse("SELECT ?y WHERE ?x p ?y");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(rewriter.ApplyRule(*parsed, rules.rules()[0]).empty());
}

TEST(RewriterTest, EnumerateIncludesOriginalFirst) {
  RuleSet rules = MakeRules({"?x p ?y => ?x q ?y @ 0.5"});
  Rewriter rewriter(rules);
  query::Query q = ParseQuery("?a p ?b");
  auto all = rewriter.EnumerateRewrites(q);
  ASSERT_GE(all.size(), 2u);
  EXPECT_EQ(all[0].query.ToString(), q.ToString());
  EXPECT_DOUBLE_EQ(all[0].weight, 1.0);
  EXPECT_TRUE(all[0].applied.empty());
}

TEST(RewriterTest, EnumerateChainsUpToDepth) {
  RuleSet rules = MakeRules({"?x p ?y => ?x q ?y @ 0.8",
                             "?x q ?y => ?x r ?y @ 0.5"});
  Rewriter::Options opts;
  opts.max_depth = 2;
  opts.min_weight = 0.0;
  Rewriter rewriter(rules, opts);
  auto all = rewriter.EnumerateRewrites(ParseQuery("?a p ?b"));
  // original, p->q (0.8), p->q->r (0.4).
  ASSERT_EQ(all.size(), 3u);
  EXPECT_DOUBLE_EQ(all[1].weight, 0.8);
  EXPECT_DOUBLE_EQ(all[2].weight, 0.4);
  EXPECT_EQ(all[2].applied.size(), 2u);

  Rewriter::Options shallow;
  shallow.max_depth = 1;
  Rewriter rewriter1(rules, shallow);
  EXPECT_EQ(rewriter1.EnumerateRewrites(ParseQuery("?a p ?b")).size(), 2u);
}

TEST(RewriterTest, EnumeratePrunesByMinWeight) {
  RuleSet rules = MakeRules({"?x p ?y => ?x q ?y @ 0.2"});
  Rewriter::Options opts;
  opts.min_weight = 0.3;
  Rewriter rewriter(rules, opts);
  EXPECT_EQ(rewriter.EnumerateRewrites(ParseQuery("?a p ?b")).size(), 1u);
}

TEST(RewriterTest, EnumerateDedupsKeepingMaxWeight) {
  // Two derivation paths to `?a r ?b`: direct (0.3) and via q (0.8*0.5 =
  // 0.4). Max-over-derivations must keep 0.4.
  RuleSet rules = MakeRules({"?x p ?y => ?x q ?y @ 0.8",
                             "?x q ?y => ?x r ?y @ 0.5",
                             "?x p ?y => ?x r ?y @ 0.3"});
  Rewriter::Options opts;
  opts.max_depth = 2;
  opts.min_weight = 0.0;
  Rewriter rewriter(rules, opts);
  auto all = rewriter.EnumerateRewrites(ParseQuery("?a p ?b"));
  double r_weight = -1;
  for (const auto& rw : all) {
    if (rw.query.ToString() == "?a r ?b") r_weight = rw.weight;
  }
  EXPECT_DOUBLE_EQ(r_weight, 0.4);
}

TEST(RewriterTest, EnumerateRespectsMaxRewritesCap) {
  RuleSet rules;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(rules
                    .Add(ParseRule(("?x p ?y => ?x q" + std::to_string(i) +
                                    " ?y @ 0.9")
                                       .c_str()))
                    .ok());
  }
  Rewriter::Options opts;
  opts.max_rewrites = 10;
  Rewriter rewriter(rules, opts);
  EXPECT_LE(rewriter.EnumerateRewrites(ParseQuery("?a p ?b")).size(), 10u);
}

TEST(RewriterTest, WeightsAreOrderedDescendingAfterOriginal) {
  RuleSet rules = MakeRules({"?x p ?y => ?x q ?y @ 0.5",
                             "?x p ?y => ?x r ?y @ 0.9",
                             "?x p ?y => ?x s ?y @ 0.7"});
  Rewriter rewriter(rules);
  auto all = rewriter.EnumerateRewrites(ParseQuery("?a p ?b"));
  ASSERT_EQ(all.size(), 4u);
  for (size_t i = 2; i < all.size(); ++i) {
    EXPECT_LE(all[i].weight, all[i - 1].weight);
  }
}

}  // namespace
}  // namespace trinit::relax
