#include <gtest/gtest.h>

#include "relax/bridge_miner.h"
#include "relax/inversion_miner.h"
#include "relax/synonym_miner.h"
#include "xkg/xkg_builder.h"

namespace trinit::relax {
namespace {

// World where `affiliation` (KG) and 'works at' (XKG) share argument
// pairs: 3 of 'works at's 4 pairs coincide with affiliation pairs.
xkg::Xkg BuildSynonymWorld() {
  xkg::XkgBuilder b;
  b.AddKgFact("E1", "affiliation", "U1");
  b.AddKgFact("E2", "affiliation", "U1");
  b.AddKgFact("E3", "affiliation", "U2");
  b.AddKgFact("E4", "affiliation", "U2");
  auto ext = [&](const char* s, const char* o) {
    b.AddExtraction(s, true, "works at", o, true, 0.8f,
                    {1, 0, std::string(s) + " works at " + o + ".", 0.8});
  };
  ext("E1", "U1");
  ext("E2", "U1");
  ext("E3", "U2");
  ext("E9", "U3");  // extra pair only in the extraction layer
  auto r = b.Build();
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

const Rule* FindRule(const RuleSet& rules, const std::string& name) {
  for (const Rule& r : rules.rules()) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

TEST(SynonymMinerTest, MinesPaperFormulaWeights) {
  xkg::Xkg xkg = BuildSynonymWorld();
  SynonymMiner::Options opts;
  opts.min_weight = 0.0;
  opts.min_overlap = 1;
  SynonymMiner miner(opts);
  RuleSet rules;
  ASSERT_TRUE(miner.Generate(xkg, &rules).ok());

  // w(affiliation -> 'works at') = |∩| / |args(works at)| = 3/4.
  const Rule* fwd = FindRule(rules, "syn:affiliation->works at");
  ASSERT_NE(fwd, nullptr);
  EXPECT_DOUBLE_EQ(fwd->weight, 3.0 / 4.0);
  EXPECT_EQ(fwd->kind, RuleKind::kSynonym);
  // RHS predicate is a token term.
  EXPECT_EQ(fwd->rhs[0].p.kind, query::Term::Kind::kToken);

  // w('works at' -> affiliation) = 3/4 as well (|args(affiliation)|=4).
  const Rule* bwd = FindRule(rules, "syn:works at->affiliation");
  ASSERT_NE(bwd, nullptr);
  EXPECT_DOUBLE_EQ(bwd->weight, 3.0 / 4.0);
}

TEST(SynonymMinerTest, ThresholdsFilterRules) {
  xkg::Xkg xkg = BuildSynonymWorld();
  SynonymMiner::Options opts;
  opts.min_weight = 0.9;  // 0.75 < 0.9
  SynonymMiner miner(opts);
  RuleSet rules;
  ASSERT_TRUE(miner.Generate(xkg, &rules).ok());
  EXPECT_EQ(rules.size(), 0u);

  opts.min_weight = 0.0;
  opts.min_overlap = 4;  // only 3 shared pairs
  SynonymMiner strict(opts);
  RuleSet rules2;
  ASSERT_TRUE(strict.Generate(xkg, &rules2).ok());
  EXPECT_EQ(rules2.size(), 0u);
}

TEST(InversionMinerTest, MinesInverseRules) {
  xkg::XkgBuilder b;
  b.AddKgFact("S1", "hasAdvisor", "A1");
  b.AddKgFact("S2", "hasAdvisor", "A2");
  b.AddKgFact("A1", "hasStudent", "S1");
  b.AddKgFact("A2", "hasStudent", "S2");
  b.AddKgFact("A3", "hasStudent", "S3");
  auto r = b.Build();
  ASSERT_TRUE(r.ok());

  InversionMiner::Options opts;
  opts.min_weight = 0.0;
  opts.min_overlap = 1;
  InversionMiner miner(opts);
  RuleSet rules;
  ASSERT_TRUE(miner.Generate(*r, &rules).ok());

  // w = |args(hasAdvisor) ∩ swap(args(hasStudent))| / |args(hasStudent)|
  //   = 2/3.
  const Rule* rule = FindRule(rules, "inv:hasAdvisor->hasStudent");
  ASSERT_NE(rule, nullptr);
  EXPECT_DOUBLE_EQ(rule->weight, 2.0 / 3.0);
  EXPECT_EQ(rule->kind, RuleKind::kInversion);
  // The RHS swaps the variables: ?y hasStudent ?x.
  EXPECT_EQ(rule->rhs[0].s, query::Term::Variable("y"));
  EXPECT_EQ(rule->rhs[0].o, query::Term::Variable("x"));
}

TEST(InversionMinerTest, DetectsSymmetricPredicates) {
  xkg::XkgBuilder b;
  b.AddKgFact("A", "marriedTo", "B");
  b.AddKgFact("B", "marriedTo", "A");
  b.AddKgFact("C", "marriedTo", "D");
  b.AddKgFact("D", "marriedTo", "C");
  auto r = b.Build();
  ASSERT_TRUE(r.ok());
  InversionMiner::Options opts;
  opts.min_weight = 0.0;
  opts.min_overlap = 1;
  InversionMiner miner(opts);
  RuleSet rules;
  ASSERT_TRUE(miner.Generate(*r, &rules).ok());
  const Rule* rule = FindRule(rules, "inv:marriedTo->marriedTo");
  ASSERT_NE(rule, nullptr);
  EXPECT_DOUBLE_EQ(rule->weight, 1.0);  // fully symmetric
}

TEST(BridgeMinerTest, MinesTwoHopExpansion) {
  // Some people have bornIn pointing directly at the country (the
  // granularity mismatch of user A), so args(bornIn) overlaps
  // compose(bornIn, locatedIn).
  xkg::XkgBuilder b;
  b.AddKgFact("P1", "bornIn", "City1");
  b.AddKgFact("P2", "bornIn", "City2");
  b.AddKgFact("P1", "bornIn", "Country1");  // coarse-grained duplicate
  b.AddKgFact("P2", "bornIn", "Country1");
  b.AddKgFact("City1", "locatedIn", "Country1");
  b.AddKgFact("City2", "locatedIn", "Country1");
  auto r = b.Build();
  ASSERT_TRUE(r.ok());

  BridgeMiner::Options opts;
  opts.min_weight = 0.0;
  opts.min_overlap = 1;
  BridgeMiner miner(opts);
  RuleSet rules;
  ASSERT_TRUE(miner.Generate(*r, &rules).ok());

  // compose(bornIn, locatedIn) = {(P1,Country1),(P2,Country1)}; both are
  // also direct bornIn pairs -> w = 2/2 = 1.
  const Rule* rule = FindRule(rules, "exp:bornIn-via-locatedIn");
  ASSERT_NE(rule, nullptr);
  EXPECT_DOUBLE_EQ(rule->weight, 1.0);
  EXPECT_EQ(rule->kind, RuleKind::kExpansion);
  ASSERT_EQ(rule->rhs.size(), 2u);
  // RHS introduces the existential middle variable.
  EXPECT_EQ(rule->rhs[0].o, rule->rhs[1].s);
}

TEST(BridgeMinerTest, NoRuleWithoutDirectOverlap) {
  // Fine-grained only: bornIn never points at countries, so the
  // expansion's compose pairs never coincide with direct pairs.
  xkg::XkgBuilder b;
  b.AddKgFact("P1", "bornIn", "City1");
  b.AddKgFact("City1", "locatedIn", "Country1");
  auto r = b.Build();
  ASSERT_TRUE(r.ok());
  BridgeMiner::Options opts;
  opts.min_weight = 0.0;
  opts.min_overlap = 1;
  BridgeMiner miner(opts);
  RuleSet rules;
  ASSERT_TRUE(miner.Generate(*r, &rules).ok());
  EXPECT_EQ(FindRule(rules, "exp:bornIn-via-locatedIn"), nullptr);
}

TEST(MinersTest, EmptyXkgProducesNoRules) {
  xkg::XkgBuilder b;
  auto r = b.Build();
  ASSERT_TRUE(r.ok());
  RuleSet rules;
  SynonymMiner syn;
  InversionMiner inv;
  BridgeMiner bridge;
  ASSERT_TRUE(syn.Generate(*r, &rules).ok());
  ASSERT_TRUE(inv.Generate(*r, &rules).ok());
  ASSERT_TRUE(bridge.Generate(*r, &rules).ok());
  EXPECT_EQ(rules.size(), 0u);
}

TEST(MinersTest, OperatorApiNames) {
  SynonymMiner syn;
  InversionMiner inv;
  BridgeMiner bridge;
  EXPECT_EQ(syn.name(), "synonym-miner");
  EXPECT_EQ(inv.name(), "inversion-miner");
  EXPECT_EQ(bridge.name(), "bridge-miner");
  // All three satisfy the RelaxationOperator interface.
  std::vector<RelaxationOperator*> ops{&syn, &inv, &bridge};
  EXPECT_EQ(ops.size(), 3u);
}

}  // namespace
}  // namespace trinit::relax
