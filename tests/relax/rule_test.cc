#include "relax/rule.h"

#include <gtest/gtest.h>

#include "relax/manual_rules.h"
#include "relax/rule_set.h"

namespace trinit::relax {
namespace {

using query::Term;
using query::TriplePattern;

Rule SimpleRule(const std::string& p1, const std::string& p2, double w) {
  Rule r;
  r.name = p1 + "->" + p2;
  r.weight = w;
  r.lhs = {TriplePattern{Term::Variable("x"), Term::Resource(p1),
                         Term::Variable("y")}};
  r.rhs = {TriplePattern{Term::Variable("x"), Term::Resource(p2),
                         Term::Variable("y")}};
  return r;
}

TEST(RuleTest, ValidateAcceptsWellFormed) {
  EXPECT_TRUE(SimpleRule("a", "b", 0.5).Validate().ok());
  EXPECT_TRUE(SimpleRule("a", "b", 0.0).Validate().ok());
  EXPECT_TRUE(SimpleRule("a", "b", 1.0).Validate().ok());
}

TEST(RuleTest, ValidateRejectsBadWeight) {
  EXPECT_FALSE(SimpleRule("a", "b", -0.1).Validate().ok());
  EXPECT_FALSE(SimpleRule("a", "b", 1.1).Validate().ok());
}

TEST(RuleTest, ValidateRejectsEmptySides) {
  Rule r = SimpleRule("a", "b", 0.5);
  r.lhs.clear();
  EXPECT_FALSE(r.Validate().ok());
  r = SimpleRule("a", "b", 0.5);
  r.rhs.clear();
  EXPECT_FALSE(r.Validate().ok());
}

TEST(RuleTest, ValidateRejectsNoOp) {
  Rule r = SimpleRule("a", "a", 0.5);
  EXPECT_FALSE(r.Validate().ok());
}

TEST(RuleTest, ToStringMatchesManualSyntax) {
  Rule r = SimpleRule("hasAdvisor", "hasStudent", 1.0);
  r.rhs = {TriplePattern{Term::Variable("y"), Term::Resource("hasStudent"),
                         Term::Variable("x")}};
  EXPECT_EQ(r.ToString(),
            "?x hasAdvisor ?y => ?y hasStudent ?x @ 1.000");
}

TEST(RuleSetTest, AddAndSize) {
  RuleSet rules;
  ASSERT_TRUE(rules.Add(SimpleRule("a", "b", 0.5)).ok());
  ASSERT_TRUE(rules.Add(SimpleRule("a", "c", 0.4)).ok());
  EXPECT_EQ(rules.size(), 2u);
}

TEST(RuleSetTest, DuplicateKeepsMaxWeight) {
  RuleSet rules;
  ASSERT_TRUE(rules.Add(SimpleRule("a", "b", 0.5)).ok());
  Rule dup = SimpleRule("a", "b", 0.5);
  ASSERT_TRUE(rules.Add(dup).ok());
  EXPECT_EQ(rules.size(), 1u);
}

TEST(RuleSetTest, RejectsInvalid) {
  RuleSet rules;
  EXPECT_FALSE(rules.Add(SimpleRule("a", "b", 2.0)).ok());
  EXPECT_EQ(rules.size(), 0u);
}

TEST(RuleSetTest, CandidatesIndexedByPredicate) {
  RuleSet rules;
  ASSERT_TRUE(rules.Add(SimpleRule("a", "b", 0.5)).ok());
  ASSERT_TRUE(rules.Add(SimpleRule("c", "d", 0.4)).ok());
  auto for_a = rules.CandidatesForPredicate(Term::Resource("a"));
  ASSERT_EQ(for_a.size(), 1u);
  EXPECT_EQ(for_a[0]->name, "a->b");
  EXPECT_TRUE(rules.CandidatesForPredicate(Term::Resource("zz")).empty());
}

TEST(RuleSetTest, VariablePredicateRulesAreGeneric) {
  RuleSet rules;
  Rule generic;
  generic.name = "invert-anything";
  generic.weight = 0.3;
  generic.lhs = {TriplePattern{Term::Variable("x"), Term::Variable("p"),
                               Term::Variable("y")}};
  generic.rhs = {TriplePattern{Term::Variable("y"), Term::Variable("p"),
                               Term::Variable("x")}};
  ASSERT_TRUE(rules.Add(std::move(generic)).ok());
  ASSERT_TRUE(rules.Add(SimpleRule("a", "b", 0.5)).ok());
  // Generic rules are candidates for every predicate.
  EXPECT_EQ(rules.CandidatesForPredicate(Term::Resource("a")).size(), 2u);
  EXPECT_EQ(rules.CandidatesForPredicate(Term::Resource("zz")).size(), 1u);
  EXPECT_EQ(rules.CandidatesForPredicate(Term::Variable("p")).size(), 1u);
}

TEST(RuleSetTest, TokenAndResourcePredicatesDistinct) {
  RuleSet rules;
  Rule r = SimpleRule("a", "b", 0.5);
  r.lhs[0].p = Term::Token("works at");
  ASSERT_TRUE(rules.Add(r).ok());
  EXPECT_EQ(rules.CandidatesForPredicate(Term::Token("works at")).size(),
            1u);
  EXPECT_TRUE(
      rules.CandidatesForPredicate(Term::Resource("works at")).empty());
}

TEST(RuleSetTest, WithoutKindFiltersAndCounts) {
  RuleSet rules;
  Rule syn = SimpleRule("a", "b", 0.5);
  syn.kind = RuleKind::kSynonym;
  Rule inv = SimpleRule("a", "c", 0.4);
  inv.kind = RuleKind::kInversion;
  ASSERT_TRUE(rules.Add(syn).ok());
  ASSERT_TRUE(rules.Add(inv).ok());
  EXPECT_EQ(rules.CountOfKind(RuleKind::kSynonym), 1u);
  RuleSet filtered = rules.WithoutKind(RuleKind::kSynonym);
  EXPECT_EQ(filtered.size(), 1u);
  EXPECT_EQ(filtered.CountOfKind(RuleKind::kSynonym), 0u);
  EXPECT_EQ(filtered.CountOfKind(RuleKind::kInversion), 1u);
}

TEST(ManualRulesTest, ParsesFigure4Rules) {
  auto rules = ParseManualRules(
      "rule2: ?x hasAdvisor ?y => ?y hasStudent ?x @ 1.0\n"
      "rule3: ?x affiliation ?y => ?x affiliation ?z ; ?z 'housed in' ?y "
      "@ 0.8\n");
  ASSERT_TRUE(rules.ok()) << rules.status();
  ASSERT_EQ(rules->size(), 2u);
  EXPECT_EQ((*rules)[0].name, "rule2");
  EXPECT_DOUBLE_EQ((*rules)[0].weight, 1.0);
  EXPECT_EQ((*rules)[1].rhs.size(), 2u);
  EXPECT_EQ((*rules)[1].rhs[1].p.kind, query::Term::Kind::kToken);
  EXPECT_DOUBLE_EQ((*rules)[1].weight, 0.8);
}

TEST(ManualRulesTest, ParsesMultiPatternLhs) {
  auto rules = ParseManualRules(
      "rule1: ?x bornIn ?y ; ?y type country => ?x bornIn ?z ; ?z type "
      "city ; ?z locatedIn ?y @ 1.0\n");
  ASSERT_TRUE(rules.ok()) << rules.status();
  EXPECT_EQ((*rules)[0].lhs.size(), 2u);
  EXPECT_EQ((*rules)[0].rhs.size(), 3u);
}

TEST(ManualRulesTest, SkipsCommentsAndBlanks) {
  auto rules = ParseManualRules(
      "# a comment\n"
      "\n"
      "?x a ?y => ?x b ?y @ 0.5\n");
  ASSERT_TRUE(rules.ok());
  EXPECT_EQ(rules->size(), 1u);
  EXPECT_EQ((*rules)[0].name, "manual_3");  // line number based
}

struct BadRuleCase {
  const char* line;
  const char* why;
};

class ManualRuleErrorTest : public ::testing::TestWithParam<BadRuleCase> {};

TEST_P(ManualRuleErrorTest, Rejects) {
  auto r = ParseManualRule(GetParam().line, 1);
  EXPECT_FALSE(r.ok()) << GetParam().why;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ManualRuleErrorTest,
    ::testing::Values(
        BadRuleCase{"?x a ?y -> ?x b ?y @ 0.5", "wrong arrow"},
        BadRuleCase{"?x a ?y => ?x b ?y", "missing weight"},
        BadRuleCase{"?x a ?y => ?x b ?y @ banana", "non-numeric weight"},
        BadRuleCase{"?x a ?y => ?x b ?y @ 1.5", "weight out of range"},
        BadRuleCase{"=> ?x b ?y @ 0.5", "empty lhs"},
        BadRuleCase{"?x a ?y => @ 0.5", "empty rhs"},
        BadRuleCase{"?x a => ?x b ?y @ 0.5", "incomplete lhs pattern"}));

}  // namespace
}  // namespace trinit::relax
