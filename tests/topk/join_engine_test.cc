#include "topk/join_engine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

namespace trinit::topk {
namespace {

// A scripted stream for driving the join engine directly.
class ScriptedStream : public BindingStream {
 public:
  ScriptedStream(size_t num_vars, size_t pattern_index,
                 std::vector<std::pair<std::vector<rdf::TermId>, double>>
                     rows) {
    for (auto& [values, score] : rows) {
      Item item;
      item.binding = query::Binding(num_vars);
      for (query::VarId v = 0; v < values.size(); ++v) {
        if (values[v] != rdf::kNullTerm) item.binding.Bind(v, values[v]);
      }
      item.log_score = score;
      item.step.pattern_index = pattern_index;
      item.step.log_score = score;
      items_.push_back(std::move(item));
    }
  }

  const Item* Peek() override {
    return next_ < items_.size() ? &items_[next_] : nullptr;
  }
  void Pop() override { ++next_; }
  double BestPossible() override {
    return next_ < items_.size() ? items_[next_].log_score : kExhausted;
  }

  size_t consumed() const { return next_; }

 private:
  std::vector<Item> items_;
  size_t next_ = 0;
};

// Vars: 0 = ?x, 1 = ?y.
query::VarTable TwoVars() {
  return query::VarTable(std::vector<std::string>{"x", "y"});
}

TEST(JoinEngineTest, SingleStreamPassesThrough) {
  query::VarTable vars = TwoVars();
  std::vector<std::unique_ptr<BindingStream>> streams;
  streams.push_back(std::make_unique<ScriptedStream>(
      2, 0,
      std::vector<std::pair<std::vector<rdf::TermId>, double>>{
          {{10, 0}, -1.0}, {{11, 0}, -2.0}, {{12, 0}, -3.0}}));
  JoinEngine::Options opts;
  opts.k = 2;
  JoinEngine engine(std::move(streams), vars, {0}, opts);
  auto answers = engine.Run();
  ASSERT_EQ(answers.size(), 2u);
  EXPECT_EQ(answers[0].binding.Get(0), 10u);
  EXPECT_DOUBLE_EQ(answers[0].score, -1.0);
  EXPECT_EQ(answers[1].binding.Get(0), 11u);
}

TEST(JoinEngineTest, JoinsOnSharedVariable) {
  query::VarTable vars = TwoVars();
  std::vector<std::unique_ptr<BindingStream>> streams;
  // Stream 0 binds ?x; stream 1 binds (?x, ?y): join on ?x.
  streams.push_back(std::make_unique<ScriptedStream>(
      2, 0,
      std::vector<std::pair<std::vector<rdf::TermId>, double>>{
          {{10, 0}, -1.0}, {{11, 0}, -1.5}}));
  streams.push_back(std::make_unique<ScriptedStream>(
      2, 1,
      std::vector<std::pair<std::vector<rdf::TermId>, double>>{
          {{10, 20}, -0.5}, {{99, 21}, -0.6}}));
  JoinEngine::Options opts;
  opts.k = 10;
  JoinEngine engine(std::move(streams), vars, {0, 1}, opts);
  auto answers = engine.Run();
  // Only x=10 joins (x=11 and x=99 have no partner).
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0].binding.Get(0), 10u);
  EXPECT_EQ(answers[0].binding.Get(1), 20u);
  EXPECT_DOUBLE_EQ(answers[0].score, -1.5);
  EXPECT_EQ(answers[0].derivation.size(), 2u);
}

TEST(JoinEngineTest, EarlyTerminationSkipsTail) {
  query::VarTable vars = TwoVars();
  // Two streams with no shared variables: cross product; top-1 is
  // determined after the heads are combined and the threshold drops
  // below the best answer.
  auto s0 = std::make_unique<ScriptedStream>(
      2, 0,
      std::vector<std::pair<std::vector<rdf::TermId>, double>>{
          {{10, 0}, -1.0}, {{11, 0}, -50.0}, {{12, 0}, -60.0}});
  auto s1 = std::make_unique<ScriptedStream>(
      2, 1,
      std::vector<std::pair<std::vector<rdf::TermId>, double>>{
          {{0, 20}, -1.0}, {{0, 21}, -50.0}, {{0, 22}, -60.0}});
  ScriptedStream* s0_raw = s0.get();
  std::vector<std::unique_ptr<BindingStream>> streams;
  streams.push_back(std::move(s0));
  streams.push_back(std::move(s1));
  JoinEngine::Options opts;
  opts.k = 1;
  JoinEngine engine(std::move(streams), vars, {0, 1}, opts);
  auto answers = engine.Run();
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_DOUBLE_EQ(answers[0].score, -2.0);
  EXPECT_TRUE(engine.stats().early_terminated);
  // The -60 tail of stream 0 must never have been pulled.
  EXPECT_LT(s0_raw->consumed(), 3u);
}

TEST(JoinEngineTest, DrainModeConsumesEverything) {
  query::VarTable vars = TwoVars();
  auto s0 = std::make_unique<ScriptedStream>(
      2, 0,
      std::vector<std::pair<std::vector<rdf::TermId>, double>>{
          {{10, 0}, -1.0}, {{11, 0}, -50.0}, {{12, 0}, -60.0}});
  ScriptedStream* s0_raw = s0.get();
  std::vector<std::unique_ptr<BindingStream>> streams;
  streams.push_back(std::move(s0));
  JoinEngine::Options opts;
  opts.k = 1;
  opts.drain = true;
  JoinEngine engine(std::move(streams), vars, {0}, opts);
  auto answers = engine.Run();
  EXPECT_EQ(answers.size(), 1u);  // still truncated to k
  EXPECT_EQ(s0_raw->consumed(), 3u);
  EXPECT_FALSE(engine.stats().early_terminated);
}

TEST(JoinEngineTest, DeduplicatesByProjectionKeepingMax) {
  query::VarTable vars = TwoVars();
  std::vector<std::unique_ptr<BindingStream>> streams;
  streams.push_back(std::make_unique<ScriptedStream>(
      2, 0,
      std::vector<std::pair<std::vector<rdf::TermId>, double>>{
          {{10, 20}, -1.0}, {{10, 21}, -0.5}}));
  JoinEngine::Options opts;
  opts.k = 10;
  // Project only ?x: both items share the key; max (=-0.5) wins.
  JoinEngine engine(std::move(streams), vars, {0}, opts);
  auto answers = engine.Run();
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_DOUBLE_EQ(answers[0].score, -0.5);
  EXPECT_EQ(answers[0].binding.Get(1), 21u);
}

TEST(JoinEngineTest, SumOverDerivationsAccumulates) {
  query::VarTable vars = TwoVars();
  std::vector<std::unique_ptr<BindingStream>> streams;
  streams.push_back(std::make_unique<ScriptedStream>(
      2, 0,
      std::vector<std::pair<std::vector<rdf::TermId>, double>>{
          {{10, 20}, std::log(0.25)}, {{10, 21}, std::log(0.25)}}));
  JoinEngine::Options opts;
  opts.k = 10;
  opts.max_over_derivations = false;
  JoinEngine engine(std::move(streams), vars, {0}, opts);
  auto answers = engine.Run();
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_NEAR(answers[0].score, std::log(0.5), 1e-12);
}

TEST(JoinEngineTest, UnboundProjectionVariableRejected) {
  query::VarTable vars = TwoVars();
  std::vector<std::unique_ptr<BindingStream>> streams;
  // Binds only ?x but the projection demands ?y too.
  streams.push_back(std::make_unique<ScriptedStream>(
      2, 0,
      std::vector<std::pair<std::vector<rdf::TermId>, double>>{
          {{10, 0}, -1.0}}));
  JoinEngine::Options opts;
  JoinEngine engine(std::move(streams), vars, {0, 1}, opts);
  EXPECT_TRUE(engine.Run().empty());
}

TEST(JoinEngineTest, ConflictingBindingsNeverCombine) {
  query::VarTable vars = TwoVars();
  std::vector<std::unique_ptr<BindingStream>> streams;
  streams.push_back(std::make_unique<ScriptedStream>(
      2, 0,
      std::vector<std::pair<std::vector<rdf::TermId>, double>>{
          {{10, 20}, -1.0}}));
  streams.push_back(std::make_unique<ScriptedStream>(
      2, 1,
      std::vector<std::pair<std::vector<rdf::TermId>, double>>{
          {{10, 99}, -1.0}}));  // same ?x, different ?y
  JoinEngine::Options opts;
  JoinEngine engine(std::move(streams), vars, {0}, opts);
  EXPECT_TRUE(engine.Run().empty());
}

TEST(JoinEngineTest, MaxPullsCapStopsRunaways) {
  query::VarTable vars = TwoVars();
  std::vector<std::pair<std::vector<rdf::TermId>, double>> many;
  for (int i = 0; i < 100; ++i) {
    many.push_back({{static_cast<rdf::TermId>(10 + i), 0},
                    -1.0 - 0.01 * i});
  }
  std::vector<std::unique_ptr<BindingStream>> streams;
  streams.push_back(std::make_unique<ScriptedStream>(2, 0, many));
  JoinEngine::Options opts;
  opts.k = 100;
  opts.max_pulls = 10;
  JoinEngine engine(std::move(streams), vars, {0}, opts);
  auto answers = engine.Run();
  EXPECT_LE(answers.size(), 10u);
  EXPECT_EQ(engine.stats().items_pulled, 10u);
}

}  // namespace
}  // namespace trinit::topk
