// Tests for RelaxedStream's cheap index-metadata bounds: dead
// alternatives are dropped, hopeless ones stay unopened, and the bound
// is sound (never below an actually emitted score).

#include <gtest/gtest.h>

#include <cmath>

#include "query/parser.h"
#include "relax/manual_rules.h"
#include "testing/paper_world.h"
#include "topk/relaxed_stream.h"

namespace trinit::topk {
namespace {

class BoundTest : public ::testing::Test {
 protected:
  BoundTest() : xkg_(testing::BuildPaperXkg()), scorer_(xkg_) {}

  query::TriplePattern Pattern(const char* text) {
    auto q = query::Parser::Parse(text, &xkg_.dict());
    EXPECT_TRUE(q.ok()) << q.status();
    return q->patterns()[0];
  }

  Alternative Alt(const char* text, double weight) {
    auto q = query::Parser::Parse(text, &xkg_.dict());
    EXPECT_TRUE(q.ok());
    return Alternative{q->patterns(), weight, {}};
  }

  xkg::Xkg xkg_;
  scoring::LmScorer scorer_;
};

TEST_F(BoundTest, UnresolvableConstantIsDead) {
  EXPECT_EQ(RelaxedStream::BoundOf(xkg_, Alt("?x NoSuchPred ?y", 1.0)),
            BindingStream::kExhausted);
}

TEST_F(BoundTest, EmptyMatchSpanIsDead) {
  // Ulm is never a subject of bornIn.
  EXPECT_EQ(RelaxedStream::BoundOf(xkg_, Alt("Ulm bornIn ?y", 1.0)),
            BindingStream::kExhausted);
}

TEST_F(BoundTest, BoundNeverBelowEmittedScores) {
  for (const char* text :
       {"AlbertEinstein ?p ?o", "?x bornIn ?y", "?x affiliation IAS",
        "AlbertEinstein 'won nobel for' ?x", "?s ?p ?o"}) {
    Alternative alt = Alt(text, 0.8);
    double bound = RelaxedStream::BoundOf(xkg_, alt);
    query::VarTable vars(query::Query(alt.patterns, {}));
    LeafStream stream(xkg_, scorer_, vars, alt.patterns[0], 0, {},
                      std::log(0.8));
    while (const auto* item = stream.Peek()) {
      EXPECT_LE(item->log_score, bound + 1e-9) << text;
      stream.Pop();
    }
  }
}

TEST_F(BoundTest, LargerSpanGivesTighterBound) {
  // Emission probability is count/mass: the broader the match span, the
  // smaller any single item's probability can be, so the all-wildcard
  // pattern (12 matches) must have a *lower* bound than the 1-match
  // bornIn pattern.
  double selective = RelaxedStream::BoundOf(xkg_, Alt("?x bornIn ?y", 1.0));
  double broad = RelaxedStream::BoundOf(xkg_, Alt("?s ?p ?o", 1.0));
  EXPECT_LE(broad, selective + 1e-12);
  EXPECT_LT(broad, 0.0);
}

TEST_F(BoundTest, DeadAlternativesAreDroppedFromStream) {
  auto rule = relax::ParseManualRule(
      "dead: ?x affiliation ?y => ?x worksForNobody ?y @ 0.9", 1);
  ASSERT_TRUE(rule.ok());
  query::TriplePattern original = Pattern("AlbertEinstein affiliation ?x");
  std::vector<Alternative> alts;
  alts.push_back(Alternative{{original}, 1.0, {}});
  // The rewritten form's predicate does not exist: dead on arrival.
  auto rewritten = query::Parser::Parse(
      "AlbertEinstein worksForNobody ?x", &xkg_.dict());
  ASSERT_TRUE(rewritten.ok());
  alts.push_back(Alternative{rewritten->patterns(), 0.9, {}});

  query::VarTable vars(query::Query({original}, {}));
  RelaxedStream stream(xkg_, scorer_, vars, std::move(alts), 0);
  EXPECT_EQ(stream.total_alternatives(), 1u);  // dead one dropped
  size_t items = 0;
  while (stream.Peek() != nullptr) {
    stream.Pop();
    ++items;
  }
  EXPECT_EQ(items, 1u);  // just the IAS fact
}

TEST_F(BoundTest, ScorerAwareBoundIsSharperButStillSound) {
  // The scorer-aware overload reads the head of the score-ordered
  // posting list: never looser than the config-agnostic max_count/span
  // cap, and still above everything the stream emits.
  for (const char* text :
       {"AlbertEinstein ?p ?o", "?x bornIn ?y", "?x affiliation IAS",
        "?s ?p ?o"}) {
    Alternative alt = Alt(text, 0.8);
    double agnostic = RelaxedStream::BoundOf(xkg_, alt);
    double aware = RelaxedStream::BoundOf(xkg_, scorer_, alt);
    EXPECT_LE(aware, agnostic + 1e-12) << text;
    query::VarTable vars(query::Query(alt.patterns, {}));
    LeafStream stream(xkg_, scorer_, vars, alt.patterns[0], 0, {},
                      std::log(0.8));
    while (const auto* item = stream.Peek()) {
      EXPECT_LE(item->log_score, aware + 1e-9) << text;
      stream.Pop();
    }
  }
}

TEST_F(BoundTest, ScorerAwareBoundDropsDeadAlternatives) {
  EXPECT_EQ(RelaxedStream::BoundOf(xkg_, scorer_, Alt("?x NoSuchPred ?y", 1.0)),
            BindingStream::kExhausted);
  EXPECT_EQ(RelaxedStream::BoundOf(xkg_, scorer_, Alt("Ulm bornIn ?y", 1.0)),
            BindingStream::kExhausted);
}

TEST_F(BoundTest, TokenPatternsFallBackToWeightBound) {
  // Token constants cannot be cheaply bounded; the bound equals log(w).
  double bound =
      RelaxedStream::BoundOf(xkg_, Alt("?x 'won nobel for' ?y", 0.7));
  EXPECT_NEAR(bound, std::log(0.7), 1e-12);
}

TEST_F(BoundTest, GroupBoundUsesTightestMember) {
  // Group of two patterns: the 1-match bornIn member caps the bound.
  Alternative group = Alt("?x bornIn ?z ; ?z locatedIn ?y", 1.0);
  double bound = RelaxedStream::BoundOf(xkg_, group);
  double single = RelaxedStream::BoundOf(xkg_, Alt("?x bornIn ?z", 1.0));
  EXPECT_LE(bound, single + 1e-12);
}

}  // namespace
}  // namespace trinit::topk
