#include "topk/topk_processor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "query/parser.h"
#include "relax/inversion_miner.h"
#include "relax/synonym_miner.h"
#include "testing/paper_world.h"
#include "topk/exhaustive_processor.h"
#include "util/random.h"

namespace trinit::topk {
namespace {

query::Query ParseQuery(const xkg::Xkg& xkg, const char* text) {
  auto r = query::Parser::Parse(text, &xkg.dict());
  EXPECT_TRUE(r.ok()) << r.status();
  return std::move(r).value();
}

std::string Answer0(const xkg::Xkg& xkg, const TopKResult& result,
                    size_t rank) {
  return xkg.dict().DebugLabel(result.ValueAt(rank, 0));
}

// ---------------------------------------------------------------------
// Figure 2: the four users' queries, without and with relaxation.
// ---------------------------------------------------------------------

class Figure2Test : public ::testing::Test {
 protected:
  Figure2Test()
      : xkg_(testing::BuildPaperXkg()), rules_(testing::BuildPaperRules()) {}

  TopKResult Run(const char* text, bool relax) {
    ProcessorOptions opts;
    opts.k = 5;
    opts.enable_relaxation = relax;
    TopKProcessor processor(xkg_, rules_, {}, opts);
    auto r = processor.Answer(ParseQuery(xkg_, text));
    EXPECT_TRUE(r.ok()) << r.status();
    return std::move(r).value();
  }

  xkg::Xkg xkg_;
  relax::RuleSet rules_;
};

TEST_F(Figure2Test, UserAFailsWithoutRelaxation) {
  // "Who was born in Germany?" — the KG knows birth *cities* only.
  TopKResult r = Run("?x bornIn Germany", /*relax=*/false);
  EXPECT_TRUE(r.answers.empty());
}

TEST_F(Figure2Test, UserARescuedByGeoExpansion) {
  TopKResult r = Run("?x bornIn Germany", /*relax=*/true);
  ASSERT_FALSE(r.answers.empty());
  EXPECT_EQ(Answer0(xkg_, r, 0), "AlbertEinstein");
  EXPECT_TRUE(r.answers[0].used_relaxation());
}

TEST_F(Figure2Test, UserBFailsWithoutRelaxation) {
  // "Who was the advisor of Albert Einstein?" — wrong argument order.
  TopKResult r = Run("AlbertEinstein hasAdvisor ?x", /*relax=*/false);
  EXPECT_TRUE(r.answers.empty());
}

TEST_F(Figure2Test, UserBRescuedByInversionRule) {
  TopKResult r = Run("AlbertEinstein hasAdvisor ?x", /*relax=*/true);
  ASSERT_FALSE(r.answers.empty());
  EXPECT_EQ(Answer0(xkg_, r, 0), "AlfredKleiner");
  // The derivation shows rule2 fired.
  bool saw_rule2 = false;
  for (const DerivationStep& step : r.answers[0].derivation) {
    for (const relax::Rule* rule : step.rules) {
      if (rule->name == "rule2") saw_rule2 = true;
    }
  }
  EXPECT_TRUE(saw_rule2);
}

TEST_F(Figure2Test, UserCFailsWithoutRelaxation) {
  // "Ivy League university Einstein was affiliated with."
  TopKResult r = Run(
      "SELECT ?x WHERE AlbertEinstein affiliation ?x ; ?x member IvyLeague",
      /*relax=*/false);
  EXPECT_TRUE(r.answers.empty());
}

TEST_F(Figure2Test, UserCRescuedThroughXkgBridge) {
  TopKResult r = Run(
      "SELECT ?x WHERE AlbertEinstein affiliation ?x ; ?x member IvyLeague",
      /*relax=*/true);
  ASSERT_FALSE(r.answers.empty());
  EXPECT_EQ(Answer0(xkg_, r, 0), "PrincetonUniversity");
  EXPECT_TRUE(r.answers[0].used_relaxation());
  // The best derivation must lean on an XKG extraction triple.
  bool used_extraction = false;
  for (const DerivationStep& step : r.answers[0].derivation) {
    for (rdf::TripleId id : step.triples) {
      if (!xkg_.IsKgTriple(id)) used_extraction = true;
    }
  }
  EXPECT_TRUE(used_extraction);
}

TEST_F(Figure2Test, UserDAnsweredByXkgWithoutRelaxation) {
  // "What did Albert Einstein win a Nobel prize for?" — no KG predicate
  // exists; the extended query language + XKG answer it directly.
  TopKResult r = Run("AlbertEinstein 'won nobel for' ?x",
                     /*relax=*/false);
  ASSERT_FALSE(r.answers.empty());
  EXPECT_EQ(Answer0(xkg_, r, 0),
            "'discovery of the photoelectric effect'");
  EXPECT_FALSE(r.answers[0].used_relaxation());
}

TEST_F(Figure2Test, Rule1FiresOnTypedQuery) {
  // The paper's rule 1 as written: the user *did* state the type.
  TopKResult r = Run("?x bornIn Germany ; Germany type country",
                     /*relax=*/true);
  ASSERT_FALSE(r.answers.empty());
  EXPECT_EQ(Answer0(xkg_, r, 0), "AlbertEinstein");
}

TEST_F(Figure2Test, RelaxedAnswersRankBelowExactOnes) {
  // Exact affiliation answer (IAS) must outrank the relaxed Princeton
  // answers: relaxation weights only attenuate.
  TopKResult r = Run("AlbertEinstein affiliation ?x", /*relax=*/true);
  ASSERT_GE(r.answers.size(), 2u);
  EXPECT_EQ(Answer0(xkg_, r, 0), "IAS");
  EXPECT_FALSE(r.answers[0].used_relaxation());
  EXPECT_TRUE(r.answers[1].used_relaxation());
  EXPECT_GE(r.answers[0].score, r.answers[1].score);
}

TEST_F(Figure2Test, KRespectsRequestedSize) {
  ProcessorOptions opts;
  opts.k = 1;
  TopKProcessor processor(xkg_, rules_, {}, opts);
  auto r = processor.Answer(ParseQuery(xkg_, "AlbertEinstein ?p ?o"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->answers.size(), 1u);
}

TEST_F(Figure2Test, InvalidQueryRejected) {
  ProcessorOptions opts;
  TopKProcessor processor(xkg_, rules_, {}, opts);
  query::Query empty;
  EXPECT_FALSE(processor.Answer(empty).ok());
}

TEST_F(Figure2Test, StatsReportLazyOpening) {
  TopKResult r = Run("AlbertEinstein affiliation ?x", /*relax=*/true);
  EXPECT_GT(r.stats.alternatives_total, 1u);
  EXPECT_LE(r.stats.alternatives_opened, r.stats.alternatives_total);
  EXPECT_GT(r.stats.items_pulled, 0u);
}

// ---------------------------------------------------------------------
// Property test: the incremental processor returns exactly the same
// top-k answers and scores as the exhaustive reference on randomized
// worlds, queries, and mined rule sets.
// ---------------------------------------------------------------------

struct WorldParams {
  uint64_t seed;
  int entities;
  int predicates;
  int triples;
  int queries;
  int k;
};

class TopKEquivalenceTest : public ::testing::TestWithParam<WorldParams> {};

xkg::Xkg RandomWorld(Rng& rng, const WorldParams& wp) {
  xkg::XkgBuilder b;
  for (int i = 0; i < wp.triples; ++i) {
    std::string s = "E" + std::to_string(rng.Uniform(wp.entities));
    std::string o = "E" + std::to_string(rng.Uniform(wp.entities));
    int p = static_cast<int>(rng.Uniform(wp.predicates));
    if (p % 3 == 2) {
      // Token predicate in the extraction layer.
      b.AddExtraction(s, true, "verb phrase " + std::to_string(p), o, true,
                      0.5f + 0.5f * static_cast<float>(rng.UniformDouble()),
                      {static_cast<uint32_t>(i), 0, s + " ... " + o, 0.8});
    } else {
      b.AddKgFact(s, "p" + std::to_string(p), o);
    }
  }
  auto r = b.Build();
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

query::Query RandomQuery(Rng& rng, const xkg::Xkg& xkg) {
  const rdf::TripleStore& store = xkg.store();
  int num_patterns = 1 + static_cast<int>(rng.Uniform(2));
  std::vector<query::TriplePattern> patterns;
  std::vector<std::string> var_names{"x", "y", "z"};
  for (int i = 0; i < num_patterns; ++i) {
    const rdf::Triple& t =
        store.triple(static_cast<rdf::TripleId>(rng.Uniform(store.size())));
    auto term_for = [&](rdf::TermId id) -> query::Term {
      if (xkg.dict().kind(id) == rdf::TermKind::kToken) {
        return query::Term::Token(std::string(xkg.dict().label(id)), id);
      }
      return query::Term::Resource(std::string(xkg.dict().label(id)), id);
    };
    query::TriplePattern p;
    // Share variable ?x across patterns to force joins; otherwise pick
    // constants from the sampled triple so matches exist.
    p.s = rng.Bernoulli(0.5) ? query::Term::Variable(var_names[i])
                             : term_for(t.s);
    p.p = rng.Bernoulli(0.3) ? query::Term::Variable("pv" + std::to_string(i))
                             : term_for(t.p);
    p.o = rng.Bernoulli(0.5) ? query::Term::Variable(var_names[i + 1])
                             : term_for(t.o);
    if (p.s.is_constant() && p.p.is_constant() && p.o.is_constant()) {
      p.o = query::Term::Variable(var_names[i + 1]);
    }
    patterns.push_back(std::move(p));
  }
  return query::Query(std::move(patterns), {});
}

TEST_P(TopKEquivalenceTest, IncrementalMatchesExhaustive) {
  const WorldParams wp = GetParam();
  Rng rng(wp.seed);
  xkg::Xkg xkg = RandomWorld(rng, wp);

  // Mine rules from the world itself.
  relax::RuleSet rules;
  relax::SynonymMiner::Options syn_opts;
  syn_opts.min_weight = 0.05;
  syn_opts.min_overlap = 1;
  relax::SynonymMiner syn(syn_opts);
  ASSERT_TRUE(syn.Generate(xkg, &rules).ok());
  relax::InversionMiner::Options inv_opts;
  inv_opts.min_weight = 0.05;
  inv_opts.min_overlap = 1;
  relax::InversionMiner inv(inv_opts);
  ASSERT_TRUE(inv.Generate(xkg, &rules).ok());

  ProcessorOptions opts;
  opts.k = wp.k;
  opts.rewrite.max_depth = 1;
  opts.rewrite.min_weight = 0.05;
  TopKProcessor incremental(xkg, rules, {}, opts);
  ExhaustiveProcessor exhaustive(xkg, rules, {}, opts);

  for (int qi = 0; qi < wp.queries; ++qi) {
    query::Query q = RandomQuery(rng, xkg);
    auto inc = incremental.Answer(q);
    auto exh = exhaustive.Answer(q);
    ASSERT_TRUE(inc.ok()) << inc.status() << " for " << q.ToString();
    ASSERT_TRUE(exh.ok()) << exh.status() << " for " << q.ToString();

    // Identical score sequences (ties may reorder bindings).
    ASSERT_EQ(inc->answers.size(), exh->answers.size())
        << "query: " << q.ToString();
    for (size_t i = 0; i < inc->answers.size(); ++i) {
      EXPECT_NEAR(inc->answers[i].score, exh->answers[i].score, 1e-9)
          << "rank " << i << " of " << q.ToString();
    }

    // Answers strictly above the k-th score must agree as sets.
    auto strict_set = [&](const TopKResult& r) {
      std::set<std::string> keys;
      double kth = r.answers.empty() ? 0.0 : r.answers.back().score;
      for (const Answer& a : r.answers) {
        if (a.score > kth + 1e-9) {
          std::string key;
          for (size_t v = 0; v < r.projection.size(); ++v) {
            key += std::to_string(a.binding.Get(
                       static_cast<query::VarId>(v))) +
                   "|";
          }
          keys.insert(key);
        }
      }
      return keys;
    };
    EXPECT_EQ(strict_set(*inc), strict_set(*exh))
        << "query: " << q.ToString();

    // The incremental processor never does more opening work than the
    // exhaustive one.
    EXPECT_LE(inc->stats.alternatives_opened,
              exh->stats.alternatives_opened);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Worlds, TopKEquivalenceTest,
    ::testing::Values(WorldParams{11, 12, 6, 120, 12, 100},
                      WorldParams{22, 30, 9, 400, 10, 100},
                      WorldParams{33, 8, 3, 60, 12, 100},
                      WorldParams{44, 50, 12, 700, 8, 5},
                      WorldParams{55, 20, 6, 250, 10, 3}));

// ---------------------------------------------------------------------
// Exhaustive-specific behaviour.
// ---------------------------------------------------------------------

TEST(ExhaustiveProcessorTest, OpensEveryAlternative) {
  xkg::Xkg xkg = testing::BuildPaperXkg();
  relax::RuleSet rules = testing::BuildPaperRules();
  ProcessorOptions opts;
  opts.k = 5;
  ExhaustiveProcessor exhaustive(xkg, rules, {}, opts);
  auto r = exhaustive.Answer(
      *query::Parser::Parse("AlbertEinstein affiliation ?x", &xkg.dict()));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->stats.alternatives_opened, r->stats.alternatives_total);
}

TEST(ProcessorOptionsTest, MaxOverDerivationsVsSum) {
  xkg::Xkg xkg = testing::BuildPaperXkg();
  relax::RuleSet rules = testing::BuildPaperRules();
  ProcessorOptions max_opts;
  max_opts.k = 5;
  ProcessorOptions sum_opts = max_opts;
  sum_opts.join.max_over_derivations = false;

  // Princeton is derivable through rule3 (0.8) and rule4 (0.7): the
  // sum-combination score must exceed the max-combination score.
  query::Query q = *query::Parser::Parse(
      "SELECT ?x WHERE AlbertEinstein affiliation ?x ; ?x member IvyLeague",
      &xkg.dict());
  TopKProcessor max_proc(xkg, rules, {}, max_opts);
  TopKProcessor sum_proc(xkg, rules, {}, sum_opts);
  auto max_r = max_proc.Answer(q);
  auto sum_r = sum_proc.Answer(q);
  ASSERT_TRUE(max_r.ok());
  ASSERT_TRUE(sum_r.ok());
  ASSERT_FALSE(max_r->answers.empty());
  ASSERT_FALSE(sum_r->answers.empty());
  EXPECT_GE(sum_r->answers[0].score, max_r->answers[0].score - 1e-9);
}

}  // namespace
}  // namespace trinit::topk
