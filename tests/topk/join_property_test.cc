// Property tests for the hash-partitioned rank-join: partitioned
// probing must be a pure pre-filter — identical answers, scores, and
// termination behavior to the seed's linear seen-scan — and the
// compiled plan's pattern order must be invisible in the answer set.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>
#include <sstream>
#include <vector>

#include "plan/planner.h"
#include "query/parser.h"
#include "testing/paper_world.h"
#include "topk/exhaustive_processor.h"
#include "topk/join_engine.h"
#include "topk/topk_processor.h"
#include "util/random.h"

namespace trinit::topk {
namespace {

class ScriptedStream : public BindingStream {
 public:
  explicit ScriptedStream(std::vector<Item> items)
      : items_(std::move(items)) {}

  const Item* Peek() override {
    return next_ < items_.size() ? &items_[next_] : nullptr;
  }
  void Pop() override { ++next_; }
  double BestPossible() override {
    return next_ < items_.size() ? items_[next_].log_score : kExhausted;
  }

 private:
  std::vector<Item> items_;
  size_t next_ = 0;
};

// ---------------------------------------------------------------------
// Randomized JoinEngine equivalence: same streams, same options, only
// the probe mode (and plan) differ. Everything observable must match,
// and hash probing must never examine more candidates.
// ---------------------------------------------------------------------

struct RandomSetup {
  size_t num_streams;
  size_t num_vars;
  std::vector<std::vector<query::VarId>> var_sets;  // per stream
  std::vector<std::vector<BindingStream::Item>> items;
  std::vector<query::VarId> projection;
  JoinEngine::Options options;  // shared part (k, drain, ...)
};

RandomSetup MakeSetup(Rng& rng) {
  RandomSetup setup;
  setup.num_streams = 2 + rng.Uniform(2);
  setup.num_vars = 4;
  for (size_t s = 0; s < setup.num_streams; ++s) {
    // Non-empty random var subset.
    std::vector<query::VarId> vars;
    for (query::VarId v = 0; v < setup.num_vars; ++v) {
      if (rng.Bernoulli(0.55)) vars.push_back(v);
    }
    if (vars.empty()) vars.push_back(static_cast<query::VarId>(
        rng.Uniform(static_cast<uint64_t>(setup.num_vars))));
    setup.var_sets.push_back(std::move(vars));
  }
  for (size_t s = 0; s < setup.num_streams; ++s) {
    size_t count = 3 + rng.Uniform(8);
    double score = -rng.UniformDouble();
    std::vector<BindingStream::Item> items;
    for (size_t i = 0; i < count; ++i) {
      BindingStream::Item item;
      item.binding = query::Binding(setup.num_vars);
      for (query::VarId v : setup.var_sets[s]) {
        // Occasionally leave a declared var unbound: a relaxed form
        // that dropped the variable (the wildcard-partition case).
        if (rng.Bernoulli(0.15)) continue;
        item.binding.Bind(v, 1 + static_cast<rdf::TermId>(rng.Uniform(4)));
      }
      score -= rng.UniformDouble();  // strictly descending per stream
      item.log_score = score;
      item.step.pattern_index = s;
      item.step.log_score = score;
      items.push_back(std::move(item));
    }
    setup.items.push_back(std::move(items));
  }
  for (query::VarId v = 0; v < setup.num_vars; ++v) {
    if (rng.Bernoulli(0.5)) setup.projection.push_back(v);
  }
  if (setup.projection.empty()) setup.projection.push_back(0);
  setup.options.k = 1 + static_cast<int>(rng.Uniform(5));
  setup.options.max_over_derivations = rng.Bernoulli(0.8);
  setup.options.drain = rng.Bernoulli(0.2);
  return setup;
}

std::shared_ptr<const plan::JoinPlan> PlanFor(const RandomSetup& setup) {
  auto plan = std::make_shared<plan::JoinPlan>();
  const size_t n = setup.num_streams;
  plan->order.resize(n);
  for (size_t i = 0; i < n; ++i) plan->order[i] = i;  // identity
  plan->join_keys.assign(n, std::vector<std::vector<query::VarId>>(n));
  plan->probe_preference.assign(n, {});
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = 0; b < n; ++b) {
      if (a == b) continue;
      std::vector<query::VarId> shared;
      for (query::VarId v : setup.var_sets[a]) {
        if (std::find(setup.var_sets[b].begin(), setup.var_sets[b].end(),
                      v) != setup.var_sets[b].end()) {
          shared.push_back(v);
        }
      }
      plan->join_keys[a][b] = std::move(shared);
    }
  }
  for (size_t b = 0; b < n; ++b) {
    for (size_t a = 0; a < n; ++a) {
      if (a != b && !plan->join_keys[b][a].empty()) {
        plan->probe_preference[b].push_back(a);
      }
    }
    std::stable_sort(plan->probe_preference[b].begin(),
                     plan->probe_preference[b].end(),
                     [&](size_t x, size_t y) {
                       return plan->join_keys[b][x].size() >
                              plan->join_keys[b][y].size();
                     });
  }
  return plan;
}

struct RunOutcome {
  std::vector<std::pair<std::vector<rdf::TermId>, double>> answers;
  JoinEngine::Stats stats;
};

RunOutcome RunEngine(const RandomSetup& setup, const query::VarTable& vars,
                     JoinEngine::ProbeMode mode,
                     std::shared_ptr<const plan::JoinPlan> plan,
                     JoinEngine::PullMode pull = JoinEngine::PullMode::kHeap) {
  std::vector<std::unique_ptr<BindingStream>> streams;
  for (const auto& items : setup.items) {
    streams.push_back(std::make_unique<ScriptedStream>(items));
  }
  JoinEngine::Options options = setup.options;
  options.probe_mode = mode;
  options.pull_mode = pull;
  options.plan = std::move(plan);
  JoinEngine engine(std::move(streams), vars, setup.projection, options);
  RunOutcome outcome;
  for (const Answer& ans : engine.Run()) {
    std::vector<rdf::TermId> values;
    for (query::VarId v = 0; v < setup.num_vars; ++v) {
      values.push_back(ans.binding.Get(v));
    }
    outcome.answers.push_back({std::move(values), ans.score});
  }
  outcome.stats = engine.stats();
  return outcome;
}

TEST(JoinEnginePropertyTest, HashPartitionedMatchesLinearProbing) {
  query::VarTable vars(std::vector<std::string>{"a", "b", "c", "d"});
  Rng rng(91);
  size_t hashed_tried = 0, linear_tried = 0;
  for (int round = 0; round < 300; ++round) {
    RandomSetup setup = MakeSetup(rng);
    RunOutcome linear =
        RunEngine(setup, vars, JoinEngine::ProbeMode::kLinear, nullptr);
    RunOutcome hashed = RunEngine(
        setup, vars, JoinEngine::ProbeMode::kHashPartition, PlanFor(setup));

    ASSERT_EQ(hashed.answers.size(), linear.answers.size())
        << "round " << round;
    for (size_t i = 0; i < hashed.answers.size(); ++i) {
      EXPECT_EQ(hashed.answers[i].first, linear.answers[i].first)
          << "round " << round << " answer " << i;
      EXPECT_NEAR(hashed.answers[i].second, linear.answers[i].second, 1e-12);
    }
    // Identical pull/termination trajectory: probing is invisible to
    // the threshold machinery.
    EXPECT_EQ(hashed.stats.items_pulled, linear.stats.items_pulled);
    EXPECT_EQ(hashed.stats.early_terminated, linear.stats.early_terminated);
    EXPECT_EQ(hashed.stats.combinations_emitted,
              linear.stats.combinations_emitted);
    hashed_tried += hashed.stats.combinations_tried;
    linear_tried += linear.stats.combinations_tried;
  }
  // The partitions narrow the probe. Per round the connectivity-aware
  // visitation order can occasionally explore a different (rarely
  // larger) prefix tree than the seed's fixed order, so the work bound
  // is asserted in aggregate.
  EXPECT_LE(hashed_tried, linear_tried);
}

// ---------------------------------------------------------------------
// Pull-selection determinism: the lazy max-heap over head scores must
// choose the exact same stream sequence as the seed's linear
// highest-head scan (ties break by stream index in both), so answers,
// total pulls, and the per-stream pull distribution all coincide.
// ---------------------------------------------------------------------

TEST(JoinEnginePropertyTest, HeapPullMatchesLinearHighestHeadScan) {
  query::VarTable vars(std::vector<std::string>{"a", "b", "c", "d"});
  Rng rng(17);
  for (int round = 0; round < 300; ++round) {
    RandomSetup setup = MakeSetup(rng);
    RunOutcome linear = RunEngine(setup, vars, JoinEngine::ProbeMode::kLinear,
                                  nullptr, JoinEngine::PullMode::kLinear);
    RunOutcome heap = RunEngine(setup, vars, JoinEngine::ProbeMode::kLinear,
                                nullptr, JoinEngine::PullMode::kHeap);

    ASSERT_EQ(heap.answers.size(), linear.answers.size()) << "round "
                                                          << round;
    for (size_t i = 0; i < heap.answers.size(); ++i) {
      EXPECT_EQ(heap.answers[i].first, linear.answers[i].first)
          << "round " << round << " answer " << i;
      EXPECT_NEAR(heap.answers[i].second, linear.answers[i].second, 1e-12);
    }
    EXPECT_EQ(heap.stats.items_pulled, linear.stats.items_pulled)
        << "round " << round;
    EXPECT_EQ(heap.stats.per_stream_pulled, linear.stats.per_stream_pulled)
        << "round " << round;
    EXPECT_EQ(heap.stats.early_terminated, linear.stats.early_terminated)
        << "round " << round;
    EXPECT_EQ(heap.stats.combinations_emitted,
              linear.stats.combinations_emitted)
        << "round " << round;
  }
}

// ---------------------------------------------------------------------
// Processor-level equivalence and plan-order invariance on the paper
// world (relaxation machinery included).
// ---------------------------------------------------------------------

class PlanEquivalenceTest : public ::testing::Test {
 protected:
  PlanEquivalenceTest()
      : xkg_(testing::BuildPaperXkg()), rules_(testing::BuildPaperRules()) {}

  TopKResult Run(const std::string& text, bool cost_order,
                 JoinEngine::ProbeMode mode, int k = 10,
                 JoinEngine::PullMode pull = JoinEngine::PullMode::kHeap) {
    auto q = query::Parser::Parse(text, &xkg_.dict());
    EXPECT_TRUE(q.ok()) << q.status();
    ProcessorOptions opts;
    opts.k = k;
    opts.use_cost_order = cost_order;
    opts.join.probe_mode = mode;
    opts.join.pull_mode = pull;
    TopKProcessor processor(xkg_, rules_, {}, opts);
    auto r = processor.Answer(*q);
    EXPECT_TRUE(r.ok()) << r.status();
    return std::move(r).value();
  }

  // Render the ranked answers as comparable strings (projection values
  // + rounded score).
  static std::vector<std::string> Rendered(const TopKResult& result) {
    std::vector<std::string> out;
    for (const Answer& ans : result.answers) {
      std::ostringstream os;
      for (size_t i = 0; i < result.projection.size(); ++i) {
        os << ans.binding.Get(static_cast<query::VarId>(i)) << "|";
      }
      os << std::llround(ans.score * 1e9);
      out.push_back(os.str());
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  xkg::Xkg xkg_;
  relax::RuleSet rules_;
};

TEST_F(PlanEquivalenceTest, PlannedHashMatchesSeedLinearAcrossQueries) {
  const char* queries[] = {
      "?x bornIn Germany",
      "AlbertEinstein hasAdvisor ?x",
      "?x affiliation ?u",
      "SELECT ?x WHERE ?x bornIn ?c ; ?c locatedIn Germany",
      "SELECT ?x WHERE ?x affiliation ?u ; ?u 'housed in' ?p",
      "SELECT ?x WHERE ?c ?p ?o ; ?x bornIn ?c ; ?c locatedIn Germany",
      "?x 'won nobel for' ?y",
  };
  for (const char* text : queries) {
    TopKResult planned =
        Run(text, /*cost_order=*/true, JoinEngine::ProbeMode::kHashPartition);
    TopKResult seed =
        Run(text, /*cost_order=*/false, JoinEngine::ProbeMode::kLinear);
    EXPECT_EQ(Rendered(planned), Rendered(seed)) << text;
  }
}

TEST_F(PlanEquivalenceTest, HeapPullMatchesLinearThroughFullProcessor) {
  // End to end — relaxed streams, variants, lazy decode — the pull-mode
  // switch must be invisible: identical ranked answers and identical
  // pull counts (the heap picks the same stream every round, it just
  // stops re-peeking the others).
  const char* queries[] = {
      "?x bornIn Germany",
      "SELECT ?x WHERE ?x bornIn ?c ; ?c locatedIn Germany",
      "SELECT ?x WHERE ?c ?p ?o ; ?x bornIn ?c ; ?c locatedIn Germany",
      "?x 'won nobel for' ?y",
  };
  for (const char* text : queries) {
    TopKResult heap = Run(text, /*cost_order=*/true,
                          JoinEngine::ProbeMode::kHashPartition, /*k=*/10,
                          JoinEngine::PullMode::kHeap);
    TopKResult linear = Run(text, /*cost_order=*/true,
                            JoinEngine::ProbeMode::kHashPartition, /*k=*/10,
                            JoinEngine::PullMode::kLinear);
    EXPECT_EQ(Rendered(heap), Rendered(linear)) << text;
    EXPECT_EQ(heap.stats.items_pulled, linear.stats.items_pulled) << text;
  }
}

TEST_F(PlanEquivalenceTest, AnswerSetIsPatternOrderInvariant) {
  // Every permutation of the three patterns must produce the same
  // answer set and scores — the planner normalizes the order, and the
  // join is commutative.
  std::vector<std::string> patterns = {
      "?x bornIn ?c", "?c locatedIn Germany", "?x affiliation ?u"};
  std::sort(patterns.begin(), patterns.end());
  std::vector<std::vector<std::string>> rendered;
  do {
    std::string text = "SELECT ?x WHERE " + patterns[0] + " ; " +
                       patterns[1] + " ; " + patterns[2];
    for (bool cost_order : {true, false}) {
      TopKResult result =
          Run(text, cost_order, JoinEngine::ProbeMode::kHashPartition);
      EXPECT_FALSE(result.answers.empty()) << text;
      rendered.push_back(Rendered(result));
    }
  } while (std::next_permutation(patterns.begin(), patterns.end()));
  for (size_t i = 1; i < rendered.size(); ++i) {
    EXPECT_EQ(rendered[i], rendered[0]) << "permutation run " << i;
  }
}

TEST_F(PlanEquivalenceTest, PlanReportRecordsOrderAndCardinalities) {
  TopKResult result =
      Run("SELECT ?x WHERE ?c ?p ?o ; ?x bornIn ?c ; ?c locatedIn Germany",
          /*cost_order=*/true, JoinEngine::ProbeMode::kHashPartition);
  ASSERT_EQ(result.plan.size(), 3u);
  // The wildcard pattern (original index 0) must not run first.
  EXPECT_NE(result.plan[0].pattern, 0u);
  std::set<size_t> seen;
  for (const auto& step : result.plan) seen.insert(step.pattern);
  EXPECT_EQ(seen.size(), 3u);
  EXPECT_EQ(result.stats.plan_cache_misses, 1u);
}

TEST_F(PlanEquivalenceTest, DerivationsStayInOriginalPatternOrder) {
  // The planner reorders execution (pattern 0 runs last here), but
  // derivations — and the explanation output built from them — must
  // stay in original pattern order.
  TopKResult result =
      Run("SELECT ?x WHERE ?c ?p ?o ; ?x bornIn ?c ; ?c locatedIn Germany",
          /*cost_order=*/true, JoinEngine::ProbeMode::kHashPartition);
  ASSERT_FALSE(result.answers.empty());
  ASSERT_EQ(result.plan.size(), 3u);
  EXPECT_NE(result.plan[0].pattern, 0u);  // execution really reordered
  for (const Answer& ans : result.answers) {
    for (size_t i = 1; i < ans.derivation.size(); ++i) {
      EXPECT_LT(ans.derivation[i - 1].pattern_index,
                ans.derivation[i].pattern_index);
    }
  }
}

TEST_F(PlanEquivalenceTest, EarlyTerminationStillSavesPullsUnderPlan) {
  // The threshold cutoff must survive the refactor: the incremental
  // processor still pulls strictly less than the exhaustive drain.
  const char* text = "?s ?p ?o";
  TopKResult lazy = Run(text, /*cost_order=*/true,
                        JoinEngine::ProbeMode::kHashPartition, /*k=*/2);
  ProcessorOptions opts;
  opts.k = 2;
  auto q = query::Parser::Parse(text, &xkg_.dict());
  ASSERT_TRUE(q.ok());
  ExhaustiveProcessor exhaustive(xkg_, rules_, {}, opts);
  auto full = exhaustive.Answer(*q);
  ASSERT_TRUE(full.ok());
  // The wildcard scan is full of score ties, so which tied binding
  // lands in the top-2 is ambiguous across processors; the score
  // sequence itself is not.
  ASSERT_EQ(lazy.answers.size(), full->answers.size());
  for (size_t i = 0; i < lazy.answers.size(); ++i) {
    EXPECT_NEAR(lazy.answers[i].score, full->answers[i].score, 1e-9);
  }
  EXPECT_LT(lazy.stats.items_pulled, full->stats.items_pulled);
}

}  // namespace
}  // namespace trinit::topk
