// Property tests for the lazy score-ordered streaming path:
//
//  (a) a lazy LeafStream emits exactly the score-descending sequence the
//      old fully-materialized stream produced (reference: brute force
//      over Match() + ScoreTriple), while touching only the index
//      entries the consumer pays for;
//  (b) TopKProcessor answers are unchanged vs ExhaustiveProcessor on
//      randomized XKGs while pulling strictly fewer items overall.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "query/parser.h"
#include "relax/inversion_miner.h"
#include "relax/synonym_miner.h"
#include "rdf/score_order_index.h"
#include "topk/exhaustive_processor.h"
#include "topk/pattern_stream.h"
#include "topk/topk_processor.h"
#include "util/random.h"
#include "xkg/xkg_builder.h"

namespace trinit::topk {
namespace {

xkg::Xkg RandomWorld(Rng& rng, int entities, int predicates, int triples,
                     bool with_tokens) {
  xkg::XkgBuilder b;
  for (int i = 0; i < triples; ++i) {
    std::string s = "E" + std::to_string(rng.Uniform(entities));
    std::string o = "E" + std::to_string(rng.Uniform(entities));
    int p = static_cast<int>(rng.Uniform(predicates));
    if (with_tokens && p % 3 == 2) {
      b.AddExtraction(s, true, "verb phrase " + std::to_string(p), o, true,
                      0.5f + 0.5f * static_cast<float>(rng.UniformDouble()),
                      {static_cast<uint32_t>(i), 0, s + " ... " + o, 0.8});
    } else {
      // Repeated inserts aggregate counts, giving the posting lists a
      // non-trivial weight spread.
      b.AddKgFact(s, "p" + std::to_string(p), o);
    }
  }
  auto r = b.Build();
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

// A random single pattern over resource vocabulary only (so the brute
// force below can resolve it with a plain Match()).
query::TriplePattern RandomResourcePattern(Rng& rng, const xkg::Xkg& xkg) {
  const rdf::TripleStore& store = xkg.store();
  const rdf::Triple& t =
      store.triple(static_cast<rdf::TripleId>(rng.Uniform(store.size())));
  auto term_for = [&](rdf::TermId id) {
    return query::Term::Resource(std::string(xkg.dict().label(id)), id);
  };
  query::TriplePattern p;
  p.s = rng.Bernoulli(0.5) ? query::Term::Variable("x") : term_for(t.s);
  p.p = rng.Bernoulli(0.4) ? query::Term::Variable("pv") : term_for(t.p);
  p.o = rng.Bernoulli(0.5) ? query::Term::Variable("y") : term_for(t.o);
  if (p.s.is_constant() && p.p.is_constant() && p.o.is_constant()) {
    p.o = query::Term::Variable("y");
  }
  return p;
}

struct RefItem {
  double score;
  std::vector<rdf::TermId> binding;
};

// The old materialized behavior, re-derived from first principles:
// fetch the whole match set, score every triple against the pattern
// mass, sort descending.
std::vector<RefItem> BruteForce(const xkg::Xkg& xkg,
                                const scoring::LmScorer& scorer,
                                const query::VarTable& vars,
                                const query::TriplePattern& pattern) {
  rdf::TermId s = pattern.s.is_variable() ? rdf::kNullTerm : pattern.s.id;
  rdf::TermId p = pattern.p.is_variable() ? rdf::kNullTerm : pattern.p.id;
  rdf::TermId o = pattern.o.is_variable() ? rdf::kNullTerm : pattern.o.id;
  std::span<const rdf::TripleId> matches = xkg.store().Match(s, p, o);
  uint64_t mass = scorer.PatternMass(matches);

  std::vector<RefItem> out;
  for (rdf::TripleId id : matches) {
    const rdf::Triple& t = xkg.store().triple(id);
    query::Binding binding(vars.size());
    bool ok = true;
    if (pattern.s.is_variable()) {
      ok = ok && binding.Bind(vars.Require(pattern.s.text), t.s);
    }
    if (pattern.p.is_variable()) {
      ok = ok && binding.Bind(vars.Require(pattern.p.text), t.p);
    }
    if (pattern.o.is_variable()) {
      ok = ok && binding.Bind(vars.Require(pattern.o.text), t.o);
    }
    if (!ok) continue;
    RefItem item;
    item.score = scorer.ScoreTriple(t, mass);
    for (size_t v = 0; v < vars.size(); ++v) {
      item.binding.push_back(binding.Get(static_cast<query::VarId>(v)));
    }
    out.push_back(std::move(item));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const RefItem& a, const RefItem& b) {
                     return a.score > b.score;
                   });
  return out;
}

TEST(LazyLeafStreamTest, EmitsExactMaterializedSequence) {
  Rng rng(101);
  for (int round = 0; round < 8; ++round) {
    xkg::Xkg xkg = RandomWorld(rng, 10 + round * 3, 4, 150 + round * 40,
                               /*with_tokens=*/false);
    scoring::LmScorer scorer(xkg);
    for (int qi = 0; qi < 20; ++qi) {
      query::TriplePattern pattern = RandomResourcePattern(rng, xkg);
      query::VarTable vars(query::Query({pattern}, {}));
      std::vector<RefItem> reference =
          BruteForce(xkg, scorer, vars, pattern);

      LeafStream stream(xkg, scorer, vars, pattern, 0);
      std::vector<RefItem> lazy;
      while (const auto* item = stream.Peek()) {
        RefItem ref;
        ref.score = item->log_score;
        for (size_t v = 0; v < vars.size(); ++v) {
          ref.binding.push_back(
              item->binding.Get(static_cast<query::VarId>(v)));
        }
        lazy.push_back(std::move(ref));
        stream.Pop();
      }

      // Same score sequence, item for item.
      ASSERT_EQ(lazy.size(), reference.size()) << pattern.ToString();
      for (size_t i = 0; i < lazy.size(); ++i) {
        EXPECT_NEAR(lazy[i].score, reference[i].score, 1e-12)
            << "rank " << i << " of " << pattern.ToString();
        if (i > 0) EXPECT_LE(lazy[i].score, lazy[i - 1].score + 1e-12);
      }
      // Same bindings (as a multiset: equal scores may reorder).
      auto as_multimap = [](const std::vector<RefItem>& items) {
        std::multimap<long long, std::vector<rdf::TermId>> m;
        for (const RefItem& item : items) {
          m.emplace(std::llround(item.score * 1e9), item.binding);
        }
        return m;
      };
      EXPECT_EQ(as_multimap(lazy), as_multimap(reference))
          << pattern.ToString();
      // A full drain decodes everything and skips nothing.
      BindingStream::Stats stats = stream.DecodeStats();
      EXPECT_EQ(stats.items_skipped, 0u);
    }
  }
}

TEST(LazyLeafStreamTest, PeekTouchesOnlyAChunkOfTheList) {
  Rng rng(202);
  xkg::Xkg xkg = RandomWorld(rng, 8, 2, 600, /*with_tokens=*/false);
  scoring::LmScorer scorer(xkg);
  auto q = query::Parser::Parse("?s ?p ?o", &xkg.dict());
  ASSERT_TRUE(q.ok());
  query::VarTable vars(*q);
  LeafStream stream(xkg, scorer, vars, q->patterns()[0], 0);

  ASSERT_NE(stream.Peek(), nullptr);
  BindingStream::Stats stats = stream.DecodeStats();
  size_t total = stats.items_decoded + stats.items_skipped;
  EXPECT_GE(total, 100u);  // the world is big enough to mean something
  EXPECT_LE(stats.items_decoded, 32u);  // a chunk or two, not the list
  EXPECT_GT(stats.items_skipped, total / 2);

  // BestPossible never decodes on its own and never increases.
  double prev = stream.BestPossible();
  for (int i = 0; i < 50 && stream.Peek() != nullptr; ++i) {
    stream.Pop();
    double cur = stream.BestPossible();
    EXPECT_LE(cur, prev + 1e-12);
    prev = cur;
  }
}

TEST(LazyLeafStreamTest, TokenPatternsStayDescendingAndLazy) {
  Rng rng(303);
  xkg::Xkg xkg = RandomWorld(rng, 12, 6, 400, /*with_tokens=*/true);
  scoring::LmScorer scorer(xkg);
  // Soft-matches several "verb phrase N" vocabulary entries.
  auto q = query::Parser::Parse("?x 'verb phrase 2' ?y", &xkg.dict());
  ASSERT_TRUE(q.ok());
  query::VarTable vars(*q);
  LeafStream stream(xkg, scorer, vars, q->patterns()[0], 0);
  double prev = 0.0;
  size_t emitted = 0;
  while (const auto* item = stream.Peek()) {
    EXPECT_LE(item->log_score, prev + 1e-12);
    prev = item->log_score;
    ++emitted;
    stream.Pop();
  }
  EXPECT_GT(emitted, 0u);
}

TEST(LazyLeafStreamTest, AblationConfigsStayDescendingWithZeroConfidence) {
  // Regression: with use_confidence off, a zero-confidence triple lives
  // at the tail of the weight-ordered list but scores near the top; the
  // emission rule must hold it back until the tail is decoded, under
  // every ablation combination.
  xkg::XkgBuilder b;
  for (int i = 0; i < 16; ++i) {
    b.AddKgFact("A" + std::to_string(i), "p", "B" + std::to_string(i));
  }
  for (int i = 0; i < 50; ++i) {
    b.AddExtraction("A0", true, "rumored at", "C", true, 0.0f,
                    {static_cast<uint32_t>(i), 0, "A0 ... C", 0.0});
  }
  auto world = b.Build();
  ASSERT_TRUE(world.ok());
  auto q = query::Parser::Parse("?s ?p ?o", &world->dict());
  ASSERT_TRUE(q.ok());
  query::VarTable vars(*q);
  for (bool use_tf : {true, false}) {
    for (bool use_confidence : {true, false}) {
      scoring::ScorerOptions opts;
      opts.use_tf = use_tf;
      opts.use_confidence = use_confidence;
      scoring::LmScorer scorer(*world, opts);
      LeafStream stream(*world, scorer, vars, q->patterns()[0], 0);
      double prev = 0.0;
      size_t emitted = 0;
      while (const auto* item = stream.Peek()) {
        EXPECT_LE(item->log_score, prev + 1e-12)
            << "tf=" << use_tf << " conf=" << use_confidence << " at rank "
            << emitted;
        prev = item->log_score;
        ++emitted;
        stream.Pop();
      }
      EXPECT_EQ(emitted, world->store().size());
    }
  }
}

// ---------------------------------------------------------------------
// (b) end to end: same answers as the exhaustive reference, strictly
// less work.
// ---------------------------------------------------------------------

TEST(LazyProcessorTest, SameAnswersStrictlyFewerPulls) {
  Rng rng(404);
  size_t lazy_pulled_total = 0, eager_pulled_total = 0;
  size_t lazy_decoded_total = 0, eager_decoded_total = 0;
  for (int round = 0; round < 3; ++round) {
    xkg::Xkg xkg = RandomWorld(rng, 25, 8, 500, /*with_tokens=*/true);

    relax::RuleSet rules;
    relax::SynonymMiner::Options syn_opts;
    syn_opts.min_weight = 0.05;
    syn_opts.min_overlap = 1;
    relax::SynonymMiner syn(syn_opts);
    ASSERT_TRUE(syn.Generate(xkg, &rules).ok());
    relax::InversionMiner::Options inv_opts;
    inv_opts.min_weight = 0.05;
    inv_opts.min_overlap = 1;
    relax::InversionMiner inv(inv_opts);
    ASSERT_TRUE(inv.Generate(xkg, &rules).ok());

    ProcessorOptions opts;
    opts.k = 3;
    opts.rewrite.max_depth = 1;
    opts.rewrite.min_weight = 0.05;
    TopKProcessor lazy(xkg, rules, {}, opts);
    ExhaustiveProcessor eager(xkg, rules, {}, opts);

    for (int qi = 0; qi < 10; ++qi) {
      query::TriplePattern pattern = RandomResourcePattern(rng, xkg);
      query::Query q({pattern}, {});
      auto lz = lazy.Answer(q);
      auto eg = eager.Answer(q);
      ASSERT_TRUE(lz.ok()) << lz.status();
      ASSERT_TRUE(eg.ok()) << eg.status();

      // Identical top-k score sequences.
      ASSERT_EQ(lz->answers.size(), eg->answers.size()) << q.ToString();
      for (size_t i = 0; i < lz->answers.size(); ++i) {
        EXPECT_NEAR(lz->answers[i].score, eg->answers[i].score, 1e-9)
            << "rank " << i << " of " << q.ToString();
      }

      // Never more work, usually much less.
      EXPECT_LE(lz->stats.items_pulled, eg->stats.items_pulled)
          << q.ToString();
      EXPECT_LE(lz->stats.items_decoded, eg->stats.items_decoded)
          << q.ToString();
      // The exhaustive run drains everything it opens.
      EXPECT_EQ(eg->stats.items_skipped, 0u) << q.ToString();

      lazy_pulled_total += lz->stats.items_pulled;
      eager_pulled_total += eg->stats.items_pulled;
      lazy_decoded_total += lz->stats.items_decoded;
      eager_decoded_total += eg->stats.items_decoded;
    }
  }
  // Aggregate strictness: laziness must have saved real work.
  EXPECT_LT(lazy_pulled_total, eager_pulled_total);
  EXPECT_LT(lazy_decoded_total, eager_decoded_total);
  EXPECT_GT(eager_pulled_total, 0u);
}

}  // namespace
}  // namespace trinit::topk
