#include <gtest/gtest.h>

#include <cmath>

#include "query/parser.h"
#include "relax/manual_rules.h"
#include "testing/paper_world.h"
#include "topk/relaxed_stream.h"

namespace trinit::topk {
namespace {

query::Query ParseQuery(const xkg::Xkg& xkg, const char* text) {
  auto r = query::Parser::Parse(text, &xkg.dict());
  EXPECT_TRUE(r.ok()) << r.status();
  return std::move(r).value();
}

class StreamTest : public ::testing::Test {
 protected:
  StreamTest() : xkg_(testing::BuildPaperXkg()), scorer_(xkg_) {}

  xkg::Xkg xkg_;
  scoring::LmScorer scorer_;
};

TEST_F(StreamTest, LeafStreamMatchesResolvedPattern) {
  query::Query q = ParseQuery(xkg_, "AlbertEinstein bornIn ?x");
  query::VarTable vars(q);
  LeafStream stream(xkg_, scorer_, vars, q.patterns()[0], 0);
  ASSERT_EQ(stream.size(), 1u);
  const auto* item = stream.Peek();
  ASSERT_NE(item, nullptr);
  EXPECT_EQ(xkg_.dict().DebugLabel(item->binding.Get(0)), "Ulm");
  EXPECT_LE(item->log_score, 0.0);
  stream.Pop();
  EXPECT_EQ(stream.Peek(), nullptr);
  EXPECT_EQ(stream.BestPossible(), BindingStream::kExhausted);
}

TEST_F(StreamTest, LeafStreamDescendingScores) {
  query::Query q = ParseQuery(xkg_, "?s ?p ?o");
  query::VarTable vars(q);
  LeafStream stream(xkg_, scorer_, vars, q.patterns()[0], 0);
  EXPECT_EQ(stream.size(), xkg_.store().size());
  double prev = 0.0;
  while (const auto* item = stream.Peek()) {
    EXPECT_LE(item->log_score, prev);
    prev = item->log_score;
    stream.Pop();
  }
}

TEST_F(StreamTest, LeafStreamUnresolvedResourceMatchesNothing) {
  query::Query q = ParseQuery(xkg_, "?x NoSuchEntity ?y");
  query::VarTable vars(q);
  LeafStream stream(xkg_, scorer_, vars, q.patterns()[0], 0);
  EXPECT_EQ(stream.size(), 0u);
}

TEST_F(StreamTest, LeafStreamTokenExactMatch) {
  // User D's query hits the XKG directly (paper Figure 2 D + Figure 3).
  query::Query q = ParseQuery(xkg_, "AlbertEinstein 'won nobel for' ?x");
  query::VarTable vars(q);
  LeafStream stream(xkg_, scorer_, vars, q.patterns()[0], 0);
  ASSERT_GE(stream.size(), 1u);
  const auto* item = stream.Peek();
  EXPECT_EQ(xkg_.dict().DebugLabel(item->binding.Get(0)),
            "'discovery of the photoelectric effect'");
  // Exact vocabulary hit: no soft-match attenuation recorded.
  EXPECT_TRUE(item->step.soft_matches.empty());
}

TEST_F(StreamTest, LeafStreamTokenSoftMatch) {
  // 'won a nobel prize' is not an interned phrase; it soft-matches
  // 'won nobel for' with partial content-token overlap ({won,nobel} of
  // {won,nobel,prize} -> Jaccard 2/3).
  query::Query q = ParseQuery(xkg_, "AlbertEinstein 'won a nobel prize' ?x");
  query::VarTable vars(q);
  LeafStream stream(xkg_, scorer_, vars, q.patterns()[0], 0);
  ASSERT_GE(stream.size(), 1u);
  const auto* item = stream.Peek();
  ASSERT_EQ(item->step.soft_matches.size(), 1u);
  EXPECT_EQ(item->step.soft_matches[0].matched_phrase, "won nobel for");
  EXPECT_NEAR(item->step.soft_matches[0].similarity, 2.0 / 3.0, 1e-12);
  // The attenuation shows up in the score relative to the exact query.
  LeafStream exact(xkg_, scorer_, vars,
                   ParseQuery(xkg_, "AlbertEinstein 'won nobel for' ?x")
                       .patterns()[0],
                   0);
  ASSERT_GE(exact.size(), 1u);
  EXPECT_LT(item->log_score, exact.Peek()->log_score);
}

TEST_F(StreamTest, LeafStreamRepeatedVariableJoinsWithinPattern) {
  xkg::XkgBuilder b;
  b.AddKgFact("A", "knows", "A");
  b.AddKgFact("A", "knows", "B");
  auto world = b.Build();
  ASSERT_TRUE(world.ok());
  scoring::LmScorer scorer(*world);
  query::Query q = ParseQuery(*world, "?x knows ?x");
  query::VarTable vars(q);
  LeafStream stream(*world, scorer, vars, q.patterns()[0], 0);
  ASSERT_EQ(stream.size(), 1u);  // only the self-loop satisfies ?x=?x
  EXPECT_EQ(world->dict().DebugLabel(stream.Peek()->binding.Get(0)), "A");
}

TEST_F(StreamTest, GroupStreamJoinsExpansionRhs) {
  // RHS of Figure 4 rule 3, instantiated for user C's first pattern:
  // AlbertEinstein affiliation ?z ; ?z 'housed in' ?x.
  auto rule = relax::ParseManualRule(
      "rule3: ?x affiliation ?y => ?x affiliation ?z ; ?z 'housed in' ?y "
      "@ 0.8",
      1);
  ASSERT_TRUE(rule.ok());
  query::Query q = ParseQuery(
      xkg_, "AlbertEinstein affiliation ?z_0 ; ?z_0 'housed in' ?x");
  query::VarTable global(
      std::vector<std::string>{"x"});  // ?z_0 is existential
  Alternative alt{q.patterns(), 0.8, {}};
  GroupStream stream(xkg_, scorer_, global, alt, 0);
  ASSERT_EQ(stream.size(), 1u);
  const auto* item = stream.Peek();
  // Binding is projected onto the global table: only ?x.
  EXPECT_EQ(item->binding.size(), 1u);
  EXPECT_EQ(xkg_.dict().DebugLabel(item->binding.Get(0)),
            "PrincetonUniversity");
  // Both triples recorded for explanation.
  EXPECT_EQ(item->step.triples.size(), 2u);
  // Chain weight attenuates: score <= log(0.8).
  EXPECT_LE(item->log_score, std::log(0.8) + 1e-12);
}

TEST_F(StreamTest, RelaxedStreamLazyOpening) {
  // Alternatives: original (weight 1) with answers, plus a relaxed form
  // (weight 0.7). As long as original items score above log(0.7), the
  // relaxation must stay unopened.
  auto rules = relax::ParseManualRules(
      "rule4: ?x affiliation ?y => ?x 'lectured at' ?y @ 0.7\n");
  ASSERT_TRUE(rules.ok());
  relax::RuleSet rule_set;
  ASSERT_TRUE(rule_set.Add((*rules)[0]).ok());
  relax::Rewriter rewriter(rule_set);

  query::Query q = ParseQuery(xkg_, "AlbertEinstein affiliation ?x");
  query::VarTable vars(q);
  std::vector<Alternative> alts =
      AlternativesForPattern(rewriter, q.patterns()[0]);
  ASSERT_EQ(alts.size(), 2u);
  RelaxedStream stream(xkg_, scorer_, vars, std::move(alts), 0);
  EXPECT_EQ(stream.total_alternatives(), 2u);
  EXPECT_EQ(stream.opened_alternatives(), 1u);  // only the original

  // First item: the original KG fact (affiliation IAS, the only
  // affiliation triple: p = 1 -> log 0 > log 0.7)... whether the
  // relaxation opens depends on the original's top score; verify merged
  // order is globally descending and relaxed answers appear eventually.
  std::vector<double> scores;
  std::vector<std::string> bindings;
  while (const auto* item = stream.Peek()) {
    scores.push_back(item->log_score);
    bindings.push_back(xkg_.dict().DebugLabel(item->binding.Get(0)));
    stream.Pop();
  }
  ASSERT_GE(scores.size(), 2u);
  for (size_t i = 1; i < scores.size(); ++i) {
    EXPECT_LE(scores[i], scores[i - 1] + 1e-12);
  }
  // Both the KG answer and the relaxed answer surfaced.
  EXPECT_NE(std::find(bindings.begin(), bindings.end(), "IAS"),
            bindings.end());
  EXPECT_NE(std::find(bindings.begin(), bindings.end(),
                      "PrincetonUniversity"),
            bindings.end());
  EXPECT_EQ(stream.opened_alternatives(), 2u);  // opened by the drain
}

TEST_F(StreamTest, RelaxedStreamNeverOpensUselessAlternative) {
  // The relaxed form has weight 0.7 but k consumption stops after the
  // first item; with the original's top score of log(1.0) = 0 >
  // log(0.7), peeking once must not open the alternative.
  auto rules = relax::ParseManualRules(
      "rule4: ?x affiliation ?y => ?x 'lectured at' ?y @ 0.7\n");
  ASSERT_TRUE(rules.ok());
  relax::RuleSet rule_set;
  ASSERT_TRUE(rule_set.Add((*rules)[0]).ok());
  relax::Rewriter rewriter(rule_set);
  query::Query q = ParseQuery(xkg_, "AlbertEinstein affiliation ?x");
  query::VarTable vars(q);
  RelaxedStream stream(xkg_, scorer_, vars,
                       AlternativesForPattern(rewriter, q.patterns()[0]),
                       0);
  const auto* first = stream.Peek();
  ASSERT_NE(first, nullptr);
  if (first->log_score > std::log(0.7)) {
    EXPECT_EQ(stream.opened_alternatives(), 1u);
  }
}

TEST_F(StreamTest, MergeStreamInterleavesByScore) {
  query::Query q = ParseQuery(xkg_, "?s ?p ?o");
  query::VarTable vars(q);
  std::vector<std::unique_ptr<BindingStream>> inputs;
  inputs.push_back(std::make_unique<LeafStream>(
      xkg_, scorer_, vars,
      ParseQuery(xkg_, "AlbertEinstein ?p ?o").patterns()[0], 0));
  inputs.push_back(std::make_unique<LeafStream>(
      xkg_, scorer_, vars, ParseQuery(xkg_, "Ulm ?p ?o").patterns()[0], 0));
  MergeStream merged(std::move(inputs));
  double prev = 0.0;
  size_t count = 0;
  while (const auto* item = merged.Peek()) {
    EXPECT_LE(item->log_score, prev + 1e-12);
    prev = item->log_score;
    merged.Pop();
    ++count;
  }
  EXPECT_GE(count, 5u);  // Einstein has 4+ triples, Ulm has 2
}

}  // namespace
}  // namespace trinit::topk
