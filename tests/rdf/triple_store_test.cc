#include "rdf/triple_store.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "rdf/dictionary.h"
#include "util/random.h"

namespace trinit::rdf {
namespace {

// Builds the Figure 1 sample KG of the paper.
struct Figure1Fixture {
  Dictionary dict;
  TermId einstein = dict.InternResource("AlbertEinstein");
  TermId ulm = dict.InternResource("Ulm");
  TermId germany = dict.InternResource("Germany");
  TermId kleiner = dict.InternResource("AlfredKleiner");
  TermId ias = dict.InternResource("IAS");
  TermId princeton = dict.InternResource("PrincetonUniversity");
  TermId ivy = dict.InternResource("IvyLeague");
  TermId born_in = dict.InternResource("bornIn");
  TermId located_in = dict.InternResource("locatedIn");
  TermId born_on = dict.InternResource("bornOn");
  TermId has_student = dict.InternResource("hasStudent");
  TermId affiliation = dict.InternResource("affiliation");
  TermId member = dict.InternResource("member");
  TermId birth_date = dict.InternLiteral("1879-03-14");
  TripleStore store;

  Figure1Fixture() {
    TripleStoreBuilder b;
    b.Add(einstein, born_in, ulm);
    b.Add(ulm, located_in, germany);
    b.Add(einstein, born_on, birth_date);
    b.Add(kleiner, has_student, einstein);
    b.Add(einstein, affiliation, ias);
    b.Add(princeton, member, ivy);
    auto r = std::move(b).Build();
    EXPECT_TRUE(r.ok());
    store = std::move(r).value();
  }
};

TEST(TripleStoreTest, BuildsFigure1Kg) {
  Figure1Fixture f;
  EXPECT_EQ(f.store.size(), 6u);
  EXPECT_TRUE(f.store.Contains(f.einstein, f.born_in, f.ulm));
  EXPECT_FALSE(f.store.Contains(f.einstein, f.born_in, f.germany));
}

TEST(TripleStoreTest, FullyBoundMatch) {
  Figure1Fixture f;
  auto ids = f.store.Match(f.einstein, f.born_in, f.ulm);
  ASSERT_EQ(ids.size(), 1u);
  const Triple& t = f.store.triple(ids[0]);
  EXPECT_EQ(t.s, f.einstein);
  EXPECT_EQ(t.p, f.born_in);
  EXPECT_EQ(t.o, f.ulm);
}

TEST(TripleStoreTest, SubjectOnlyMatch) {
  Figure1Fixture f;
  auto ids = f.store.Match(f.einstein, kNullTerm, kNullTerm);
  EXPECT_EQ(ids.size(), 3u);  // bornIn, bornOn, affiliation
  for (TripleId id : ids) {
    EXPECT_EQ(f.store.triple(id).s, f.einstein);
  }
}

TEST(TripleStoreTest, PredicateOnlyMatch) {
  Figure1Fixture f;
  auto ids = f.store.Match(kNullTerm, f.born_in, kNullTerm);
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(f.store.triple(ids[0]).o, f.ulm);
}

TEST(TripleStoreTest, ObjectOnlyMatch) {
  Figure1Fixture f;
  auto ids = f.store.Match(kNullTerm, kNullTerm, f.einstein);
  ASSERT_EQ(ids.size(), 1u);  // AlfredKleiner hasStudent AlbertEinstein
  EXPECT_EQ(f.store.triple(ids[0]).s, f.kleiner);
}

TEST(TripleStoreTest, SubjectObjectMatch) {
  Figure1Fixture f;
  auto ids = f.store.Match(f.einstein, kNullTerm, f.ias);
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(f.store.triple(ids[0]).p, f.affiliation);
}

TEST(TripleStoreTest, WildcardMatchesAll) {
  Figure1Fixture f;
  EXPECT_EQ(f.store.Match(kNullTerm, kNullTerm, kNullTerm).size(), 6u);
}

TEST(TripleStoreTest, EmptyStoreMatchesNothing) {
  TripleStore store;
  EXPECT_EQ(store.Match(kNullTerm, kNullTerm, kNullTerm).size(), 0u);
  EXPECT_EQ(store.Find(1, 2, 3), kInvalidTriple);
}

TEST(TripleStoreBuilderTest, RejectsNullSlots) {
  TripleStoreBuilder b;
  b.Add(kNullTerm, 1, 2);
  auto r = std::move(b).Build();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(TripleStoreBuilderTest, DeduplicatesAndAggregates) {
  TripleStoreBuilder b;
  b.Add(1, 2, 3, 0.6f, 2, 5);
  b.Add(1, 2, 3, 0.9f, 3, 7);
  b.Add(1, 2, 3, 0.7f, 1, kKgSource);
  auto r = std::move(b).Build();
  ASSERT_TRUE(r.ok());
  const TripleStore& store = *r;
  ASSERT_EQ(store.size(), 1u);
  const Triple& t = store.triple(0);
  EXPECT_EQ(t.count, 6u);                  // counts summed
  EXPECT_FLOAT_EQ(t.confidence, 0.9f);     // max confidence
  EXPECT_EQ(t.source, kKgSource);          // KG provenance wins
  EXPECT_EQ(store.total_count(), 6u);
}

TEST(TripleStoreTest, TotalCountSumsEvidence) {
  TripleStoreBuilder b;
  b.Add(1, 2, 3, 1.0f, 4);
  b.Add(4, 5, 6, 1.0f, 9);
  auto r = std::move(b).Build();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->total_count(), 13u);
}

// ---------------------------------------------------------------------
// Property test: on random graphs, every pattern shape must return
// exactly the triples a brute-force scan returns, for all 8 shapes.
// ---------------------------------------------------------------------

struct RandomGraphParams {
  uint64_t seed;
  int num_triples;
  int num_terms;
};

class TripleStorePropertyTest
    : public ::testing::TestWithParam<RandomGraphParams> {};

TEST_P(TripleStorePropertyTest, AllPatternShapesMatchBruteForce) {
  const RandomGraphParams param = GetParam();
  Rng rng(param.seed);
  std::vector<Triple> raw;
  TripleStoreBuilder b;
  for (int i = 0; i < param.num_triples; ++i) {
    Triple t;
    t.s = static_cast<TermId>(1 + rng.Uniform(param.num_terms));
    t.p = static_cast<TermId>(1 + rng.Uniform(param.num_terms / 4 + 1));
    t.o = static_cast<TermId>(1 + rng.Uniform(param.num_terms));
    raw.push_back(t);
    b.Add(t);
  }
  auto r = std::move(b).Build();
  ASSERT_TRUE(r.ok());
  const TripleStore& store = *r;

  // Dedup raw triples for the reference set.
  std::set<std::tuple<TermId, TermId, TermId>> reference;
  for (const Triple& t : raw) reference.insert({t.s, t.p, t.o});
  ASSERT_EQ(store.size(), reference.size());

  auto check_pattern = [&](TermId s, TermId p, TermId o) {
    std::set<std::tuple<TermId, TermId, TermId>> expected;
    for (const auto& t : reference) {
      auto [ts, tp, to] = t;
      if ((s == kNullTerm || ts == s) && (p == kNullTerm || tp == p) &&
          (o == kNullTerm || to == o)) {
        expected.insert(t);
      }
    }
    std::set<std::tuple<TermId, TermId, TermId>> actual;
    for (TripleId id : store.Match(s, p, o)) {
      const Triple& t = store.triple(id);
      actual.insert({t.s, t.p, t.o});
    }
    EXPECT_EQ(actual, expected)
        << "pattern (" << s << "," << p << "," << o << ")";
  };

  // Probe with terms that exist (drawn from stored triples) and a few
  // that may not.
  for (int probe = 0; probe < 30; ++probe) {
    const Triple& t = store.triple(
        static_cast<TripleId>(rng.Uniform(store.size())));
    TermId s = t.s, p = t.p, o = t.o;
    TermId miss = static_cast<TermId>(1 + rng.Uniform(param.num_terms * 2));
    check_pattern(s, p, o);
    check_pattern(s, kNullTerm, kNullTerm);
    check_pattern(kNullTerm, p, kNullTerm);
    check_pattern(kNullTerm, kNullTerm, o);
    check_pattern(s, p, kNullTerm);
    check_pattern(s, kNullTerm, o);
    check_pattern(kNullTerm, p, o);
    check_pattern(miss, kNullTerm, miss);
  }
  check_pattern(kNullTerm, kNullTerm, kNullTerm);
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, TripleStorePropertyTest,
    ::testing::Values(RandomGraphParams{101, 50, 10},
                      RandomGraphParams{202, 500, 40},
                      RandomGraphParams{303, 2000, 100},
                      RandomGraphParams{404, 5000, 30},   // dense collisions
                      RandomGraphParams{505, 1, 1},       // degenerate
                      RandomGraphParams{606, 300, 300})); // sparse

TEST(TripleStoreTest, MatchCountAgreesWithMatchSize) {
  Figure1Fixture f;
  EXPECT_EQ(f.store.MatchCount(f.einstein, kNullTerm, kNullTerm),
            f.store.Match(f.einstein, kNullTerm, kNullTerm).size());
  EXPECT_EQ(f.store.MatchCount(kNullTerm, f.born_in, kNullTerm), 1u);
}

}  // namespace
}  // namespace trinit::rdf
