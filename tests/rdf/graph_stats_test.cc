#include "rdf/graph_stats.h"

#include <gtest/gtest.h>

#include "rdf/dictionary.h"

namespace trinit::rdf {
namespace {

// World mirroring the paper's mined-rule example: two predicates that
// share argument pairs, plus an inverse pair.
class GraphStatsFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    // affiliation connects: (e1,u1) (e2,u1) (e3,u2)
    // 'works at'  connects: (e1,u1) (e2,u1) (e4,u3)
    // hasAdvisor: (s1,a1) (s2,a2);  hasStudent: (a1,s1) (a2,s2) (a3,s3)
    affiliation_ = dict_.InternResource("affiliation");
    works_at_ = dict_.InternToken("works at");
    has_advisor_ = dict_.InternResource("hasAdvisor");
    has_student_ = dict_.InternResource("hasStudent");
    for (int i = 1; i <= 4; ++i) {
      e_[i] = dict_.InternResource("e" + std::to_string(i));
      u_[i] = dict_.InternResource("u" + std::to_string(i));
      s_[i] = dict_.InternResource("s" + std::to_string(i));
      a_[i] = dict_.InternResource("a" + std::to_string(i));
    }
    TripleStoreBuilder b;
    b.Add(e_[1], affiliation_, u_[1]);
    b.Add(e_[2], affiliation_, u_[1]);
    b.Add(e_[3], affiliation_, u_[2]);
    b.Add(e_[1], works_at_, u_[1]);
    b.Add(e_[2], works_at_, u_[1]);
    b.Add(e_[4], works_at_, u_[3]);
    b.Add(s_[1], has_advisor_, a_[1]);
    b.Add(s_[2], has_advisor_, a_[2]);
    b.Add(a_[1], has_student_, s_[1]);
    b.Add(a_[2], has_student_, s_[2]);
    b.Add(a_[3], has_student_, s_[3]);
    auto r = b.Build();
    ASSERT_TRUE(r.ok());
    store_ = std::move(r).value();
    stats_.emplace(GraphStats::Compute(store_));
  }

  Dictionary dict_;
  TermId affiliation_, works_at_, has_advisor_, has_student_;
  TermId e_[5], u_[5], s_[5], a_[5];
  TripleStore store_;
  std::optional<GraphStats> stats_;
};

TEST_F(GraphStatsFixture, PredicateListIsComplete) {
  EXPECT_EQ(stats_->predicates().size(), 4u);
}

TEST_F(GraphStatsFixture, PerPredicateCounts) {
  const auto* ps = stats_->ForPredicate(affiliation_);
  ASSERT_NE(ps, nullptr);
  EXPECT_EQ(ps->triple_count, 3u);
  EXPECT_EQ(ps->distinct_subjects, 3u);
  EXPECT_EQ(ps->distinct_objects, 2u);
}

TEST_F(GraphStatsFixture, UnknownPredicateIsNull) {
  EXPECT_EQ(stats_->ForPredicate(e_[1]), nullptr);
  EXPECT_TRUE(stats_->Args(e_[1]).empty());
}

TEST_F(GraphStatsFixture, ArgsAreSortedDistinctPairs) {
  const auto& args = stats_->Args(affiliation_);
  ASSERT_EQ(args.size(), 3u);
  EXPECT_TRUE(std::is_sorted(args.begin(), args.end()));
}

TEST_F(GraphStatsFixture, ArgsOverlapCountsSharedPairs) {
  // affiliation and 'works at' share (e1,u1) and (e2,u1).
  EXPECT_EQ(stats_->ArgsOverlap(affiliation_, works_at_), 2u);
  EXPECT_EQ(stats_->ArgsOverlap(works_at_, affiliation_), 2u);
  EXPECT_EQ(stats_->ArgsOverlap(affiliation_, has_advisor_), 0u);
}

TEST_F(GraphStatsFixture, MinedWeightMatchesPaperFormula) {
  // w(p1 -> p2) = |args(p1) ∩ args(p2)| / |args(p2)|
  EXPECT_DOUBLE_EQ(stats_->MinedWeight(affiliation_, works_at_), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(stats_->MinedWeight(works_at_, affiliation_), 2.0 / 3.0);
  // Weight is asymmetric in general: give works_at an extra pair.
  EXPECT_DOUBLE_EQ(stats_->MinedWeight(affiliation_, affiliation_), 1.0);
}

TEST_F(GraphStatsFixture, InverseOverlapDetectsInversePredicates) {
  // hasAdvisor (s,a) pairs vs hasStudent (a,s) pairs: both advisor pairs
  // appear inverted in hasStudent.
  EXPECT_EQ(stats_->InverseArgsOverlap(has_advisor_, has_student_), 2u);
  EXPECT_DOUBLE_EQ(stats_->MinedInverseWeight(has_advisor_, has_student_),
                   2.0 / 3.0);
  // And the plain overlap is zero.
  EXPECT_EQ(stats_->ArgsOverlap(has_advisor_, has_student_), 0u);
}

TEST_F(GraphStatsFixture, MinedWeightZeroForUnknown) {
  EXPECT_DOUBLE_EQ(stats_->MinedWeight(affiliation_, e_[1]), 0.0);
  EXPECT_DOUBLE_EQ(stats_->MinedInverseWeight(e_[1], affiliation_), 0.0);
}

TEST(GraphStatsTest, EvidenceCountSumsTripleCounts) {
  TripleStoreBuilder b;
  b.Add(1, 10, 2, 1.0f, 3);
  b.Add(3, 10, 4, 1.0f, 5);
  b.Add(1, 10, 2, 1.0f, 2);  // merges with first triple
  auto r = b.Build();
  ASSERT_TRUE(r.ok());
  GraphStats stats = GraphStats::Compute(*r);
  const auto* ps = stats.ForPredicate(10);
  ASSERT_NE(ps, nullptr);
  EXPECT_EQ(ps->triple_count, 2u);
  EXPECT_EQ(ps->evidence_count, 10u);
}

TEST(GraphStatsTest, DuplicatePairsCollapseInArgs) {
  TripleStoreBuilder b;
  b.Add(1, 10, 2);
  b.Add(1, 10, 2);
  b.Add(1, 10, 3);
  auto r = b.Build();
  ASSERT_TRUE(r.ok());
  GraphStats stats = GraphStats::Compute(*r);
  EXPECT_EQ(stats.Args(10).size(), 2u);
}

}  // namespace
}  // namespace trinit::rdf
