#include "rdf/dictionary.h"

#include <gtest/gtest.h>

namespace trinit::rdf {
namespace {

TEST(DictionaryTest, InternAssignsSequentialIds) {
  Dictionary dict;
  TermId a = dict.InternResource("AlbertEinstein");
  TermId b = dict.InternResource("Ulm");
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  EXPECT_EQ(dict.size(), 2u);
}

TEST(DictionaryTest, InternIsIdempotent) {
  Dictionary dict;
  TermId a = dict.InternResource("bornIn");
  TermId b = dict.InternResource("bornIn");
  EXPECT_EQ(a, b);
  EXPECT_EQ(dict.size(), 1u);
}

TEST(DictionaryTest, KindsNamespaceLabels) {
  Dictionary dict;
  TermId res = dict.InternResource("ulm");
  TermId tok = dict.InternToken("ulm");
  TermId lit = dict.InternLiteral("ulm");
  EXPECT_NE(res, tok);
  EXPECT_NE(tok, lit);
  EXPECT_NE(res, lit);
  EXPECT_EQ(dict.kind(res), TermKind::kResource);
  EXPECT_EQ(dict.kind(tok), TermKind::kToken);
  EXPECT_EQ(dict.kind(lit), TermKind::kLiteral);
}

TEST(DictionaryTest, RoundTripLabel) {
  Dictionary dict;
  TermId id = dict.InternToken("won a nobel for");
  EXPECT_EQ(dict.label(id), "won a nobel for");
}

TEST(DictionaryTest, FindReturnsNullForMissing) {
  Dictionary dict;
  dict.InternResource("exists");
  EXPECT_EQ(dict.Find(TermKind::kResource, "missing"), kNullTerm);
  EXPECT_EQ(dict.Find(TermKind::kToken, "exists"), kNullTerm);
  EXPECT_NE(dict.Find(TermKind::kResource, "exists"), kNullTerm);
}

TEST(DictionaryTest, ContainsRejectsOutOfRange) {
  Dictionary dict;
  TermId id = dict.InternResource("x");
  EXPECT_TRUE(dict.Contains(id));
  EXPECT_FALSE(dict.Contains(kNullTerm));
  EXPECT_FALSE(dict.Contains(id + 1));
}

TEST(DictionaryTest, DebugLabelNeverFails) {
  Dictionary dict;
  TermId res = dict.InternResource("IAS");
  TermId tok = dict.InternToken("housed in");
  EXPECT_EQ(dict.DebugLabel(res), "IAS");
  EXPECT_EQ(dict.DebugLabel(tok), "'housed in'");  // tokens are quoted
  EXPECT_EQ(dict.DebugLabel(kNullTerm), "<null>");
  EXPECT_EQ(dict.DebugLabel(999), "<unknown:999>");
}

TEST(DictionaryTest, CountOfKindTracksInserts) {
  Dictionary dict;
  dict.InternResource("r1");
  dict.InternResource("r2");
  dict.InternToken("t1");
  dict.InternLiteral("l1");
  dict.InternResource("r1");  // duplicate, no effect
  EXPECT_EQ(dict.CountOfKind(TermKind::kResource), 2u);
  EXPECT_EQ(dict.CountOfKind(TermKind::kToken), 1u);
  EXPECT_EQ(dict.CountOfKind(TermKind::kLiteral), 1u);
}

TEST(DictionaryTest, ForEachVisitsAllIdsInOrder) {
  Dictionary dict;
  dict.InternResource("a");
  dict.InternToken("b");
  dict.InternLiteral("c");
  std::vector<TermId> seen;
  dict.ForEach([&](TermId id) { seen.push_back(id); });
  EXPECT_EQ(seen, (std::vector<TermId>{1, 2, 3}));
}

class DictionaryScaleTest : public ::testing::TestWithParam<int> {};

TEST_P(DictionaryScaleTest, RoundTripManyTerms) {
  const int n = GetParam();
  Dictionary dict;
  std::vector<TermId> ids;
  ids.reserve(n);
  for (int i = 0; i < n; ++i) {
    ids.push_back(dict.InternResource("entity_" + std::to_string(i)));
  }
  EXPECT_EQ(dict.size(), static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(dict.label(ids[i]), "entity_" + std::to_string(i));
    EXPECT_EQ(dict.Find(TermKind::kResource, "entity_" + std::to_string(i)),
              ids[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, DictionaryScaleTest,
                         ::testing::Values(1, 10, 1000, 20000));

}  // namespace
}  // namespace trinit::rdf
