// ShardedStore: the hash-partitioned serving decomposition is *exact* —
// members partition the store by subject hash, per-shard GraphStats
// merge back to the unsharded compute bit-for-bit (property-tested on
// randomized stores), and merging per-shard score-ordered lists by
// descending weight reconstructs the global list and its mass.

#include "rdf/sharded_store.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/graph_stats.h"
#include "rdf/score_order_index.h"
#include "rdf/triple_store.h"

namespace trinit::rdf {
namespace {

/// Deterministic randomized store: `n` raw adds over a skewed term
/// universe with varied confidences/counts (so score order is
/// non-trivial) and enough subject collisions that shards are uneven.
TripleStore RandomStore(uint64_t seed, size_t n) {
  std::mt19937_64 rng(seed);
  Dictionary dict;
  std::vector<TermId> subjects, predicates, objects;
  for (int i = 0; i < 48; ++i) {
    subjects.push_back(dict.InternResource("s" + std::to_string(i)));
  }
  for (int i = 0; i < 9; ++i) {
    predicates.push_back(dict.InternResource("p" + std::to_string(i)));
  }
  for (int i = 0; i < 32; ++i) {
    objects.push_back(dict.InternResource("o" + std::to_string(i)));
  }
  TripleStoreBuilder b;
  for (size_t i = 0; i < n; ++i) {
    // Square the draw to skew toward low subject ids: some subjects
    // carry many triples, some none.
    const size_t s = rng() % subjects.size() * (rng() % subjects.size()) /
                     subjects.size();
    const float confidence =
        0.05f + 0.95f * static_cast<float>(rng() % 1000) / 1000.0f;
    const uint32_t count = 1 + static_cast<uint32_t>(rng() % 7);
    const SourceId source =
        rng() % 3 == 0 ? kKgSource : static_cast<SourceId>(1 + rng() % 5);
    b.Add(subjects[s], predicates[rng() % predicates.size()],
          objects[rng() % objects.size()], confidence, count, source);
  }
  auto r = b.Build();
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

/// Field-by-field equality of two stats objects (predicates, counts,
/// args) — the "bit-for-bit" the planner relies on under sharding.
void ExpectStatsEqual(const GraphStats& got, const GraphStats& want) {
  ASSERT_EQ(got.predicates(), want.predicates());
  for (TermId p : want.predicates()) {
    const GraphStats::PredicateStats* g = got.ForPredicate(p);
    const GraphStats::PredicateStats* w = want.ForPredicate(p);
    ASSERT_NE(g, nullptr);
    ASSERT_NE(w, nullptr);
    EXPECT_EQ(g->triple_count, w->triple_count) << "p=" << p;
    EXPECT_EQ(g->evidence_count, w->evidence_count) << "p=" << p;
    EXPECT_EQ(g->distinct_subjects, w->distinct_subjects) << "p=" << p;
    EXPECT_EQ(g->distinct_objects, w->distinct_objects) << "p=" << p;
    const auto ga = got.Args(p);
    const auto wa = want.Args(p);
    ASSERT_EQ(ga.size(), wa.size()) << "p=" << p;
    EXPECT_TRUE(std::equal(ga.begin(), ga.end(), wa.begin())) << "p=" << p;
  }
}

/// Rebuilds ShardSnapshot parts for `sharded` (members copied, stats
/// recomputed per shard, no materialized shapes) — the writer's job,
/// done by hand so tests can tamper with individual fields.
std::vector<ShardedStore::ShardSnapshot> MakeParts(const TripleStore& store,
                                                   const ShardedStore& sharded) {
  std::vector<ShardedStore::ShardSnapshot> parts;
  for (size_t i = 0; i < sharded.shard_count(); ++i) {
    const auto m = sharded.members(i);
    std::vector<TripleId> members(m.begin(), m.end());
    GraphStats stats = GraphStats::ComputeSubset(
        store.triples(), std::span<const TripleId>(members));
    parts.push_back({util::OwnedSpan<TripleId>(std::move(members)),
                     {},
                     std::move(stats)});
  }
  return parts;
}

TEST(ShardedStoreTest, ShardOfIsDeterministicAndInRange) {
  for (const size_t shard_count : {1u, 2u, 3u, 4u, 8u}) {
    for (TermId s = 0; s < 512; ++s) {
      const uint32_t shard = ShardedStore::ShardOf(s, shard_count);
      EXPECT_LT(shard, shard_count);
      EXPECT_EQ(shard, ShardedStore::ShardOf(s, shard_count));
    }
  }
  // Not all subjects land on shard 0 (the hash actually spreads).
  bool spread = false;
  for (TermId s = 0; s < 64 && !spread; ++s) {
    spread = ShardedStore::ShardOf(s, 4) != 0;
  }
  EXPECT_TRUE(spread);
}

TEST(ShardedStoreTest, BuildPartitionsTheStoreBySubjectHash) {
  const TripleStore store = RandomStore(3, 400);
  for (const size_t shard_count : {2u, 4u, 8u}) {
    const ShardedStore sharded = ShardedStore::Build(store, shard_count);
    ASSERT_EQ(sharded.shard_count(), shard_count);
    size_t total = 0;
    for (size_t i = 0; i < shard_count; ++i) {
      const auto members = sharded.members(i);
      total += members.size();
      for (size_t j = 0; j < members.size(); ++j) {
        ASSERT_LT(members[j], store.size());
        if (j > 0) ASSERT_LT(members[j - 1], members[j]);
        ASSERT_EQ(ShardedStore::ShardOf(store.triple(members[j]).s,
                                        shard_count),
                  i);
      }
    }
    // Ascending + on-shard + the size sum prove a disjoint union.
    EXPECT_EQ(total, store.size());
  }
}

// Satellite property: per-shard stats aggregate to the unsharded stats
// exactly, on randomized worlds across shard counts — what lets the
// planner consume MergedStats without a parallel "sharded estimate"
// code path.
TEST(ShardedStoreTest, PropertyMergedStatsEqualUnshardedCompute) {
  for (const uint64_t seed : {7u, 19u, 101u}) {
    const TripleStore store = RandomStore(seed, 300 + seed);
    const GraphStats want = GraphStats::Compute(store);
    for (const size_t shard_count : {1u, 2u, 4u, 8u}) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " S=" +
                   std::to_string(shard_count));
      const ShardedStore sharded = ShardedStore::Build(store, shard_count);
      ExpectStatsEqual(sharded.MergedStats(), want);
    }
  }
}

TEST(ShardedStoreTest, MergedScoreOrderedListsReconstructTheGlobalList) {
  const TripleStore store = RandomStore(11, 500);
  const Triple& probe = store.triple(store.size() / 2);
  struct Pattern {
    TermId s, p, o;
  };
  const Pattern patterns[] = {
      {kNullTerm, kNullTerm, kNullTerm}, {probe.s, kNullTerm, kNullTerm},
      {kNullTerm, probe.p, kNullTerm},   {kNullTerm, kNullTerm, probe.o},
      {probe.s, probe.p, kNullTerm},     {probe.s, kNullTerm, probe.o},
      {kNullTerm, probe.p, probe.o},
  };
  for (const size_t shard_count : {2u, 4u, 8u}) {
    const ShardedStore sharded = ShardedStore::Build(store, shard_count);
    for (const Pattern& q : patterns) {
      SCOPED_TRACE("S=" + std::to_string(shard_count) + " pattern " +
                   std::to_string(q.s) + "/" + std::to_string(q.p) + "/" +
                   std::to_string(q.o));
      const ScoreOrderIndex::List global = store.ScoreOrdered(q.s, q.p, q.o);
      const ShardedStore::Lists lists =
          sharded.ScoreOrdered(store, q.s, q.p, q.o);
      ASSERT_EQ(lists.per_shard.size(), shard_count);

      // Per-shard lists are the global list filtered to the shard, so
      // re-sorting their union by (weight desc, id asc) — the order the
      // global permutation uses within one key block — must reproduce
      // the global sequence, and masses must sum exactly.
      std::vector<TripleId> merged;
      uint64_t mass_sum = 0;
      for (size_t i = 0; i < shard_count; ++i) {
        const ScoreOrderIndex::List& list = lists.per_shard[i];
        mass_sum += list.mass;
        for (TripleId id : list.ids) {
          ASSERT_EQ(ShardedStore::ShardOf(store.triple(id).s, shard_count), i);
          merged.push_back(id);
        }
      }
      std::sort(merged.begin(), merged.end(), [&](TripleId a, TripleId b) {
        const double wa = ScoreOrderIndex::WeightOf(store.triple(a));
        const double wb = ScoreOrderIndex::WeightOf(store.triple(b));
        if (wa != wb) return wa > wb;
        return a < b;
      });
      ASSERT_EQ(merged.size(), global.ids.size());
      EXPECT_TRUE(
          std::equal(merged.begin(), merged.end(), global.ids.begin()));
      EXPECT_EQ(lists.mass, global.mass);
      EXPECT_EQ(mass_sum, global.mass);
    }
  }
}

TEST(ShardedStoreTest, FullyBoundPatternResolvesOnTheOwningShard) {
  const TripleStore store = RandomStore(13, 200);
  const ShardedStore sharded = ShardedStore::Build(store, 4);
  const Triple& t = store.triple(0);
  const ShardedStore::Lists lists = sharded.ScoreOrdered(store, t.s, t.p, t.o);
  const uint32_t owner = ShardedStore::ShardOf(t.s, 4);
  for (size_t i = 0; i < 4; ++i) {
    if (i == owner) {
      ASSERT_EQ(lists.per_shard[i].ids.size(), 1u);
      EXPECT_EQ(lists.per_shard[i].ids[0], 0u);
    } else {
      EXPECT_TRUE(lists.per_shard[i].ids.empty());
    }
  }
  EXPECT_EQ(lists.mass, store.ScoreOrdered(t.s, t.p, t.o).mass);
}

TEST(ShardedStoreTest, ShapeBuildsStayLazyAndScatterPerShard) {
  const TripleStore store = RandomStore(17, 300);
  const ShardedStore sharded = ShardedStore::Build(store, 4);
  EXPECT_EQ(sharded.score_shapes_built(), 0u);
  (void)sharded.ScoreOrdered(store, kNullTerm, store.triple(0).p, kNullTerm);
  // One shape (P) materialized on every shard, nothing else.
  EXPECT_EQ(sharded.score_shapes_built(), 4u);
  (void)sharded.ScoreOrdered(store, kNullTerm, store.triple(0).p, kNullTerm);
  EXPECT_EQ(sharded.score_shapes_built(), 4u);
}

TEST(ShardedStoreTest, FromSnapshotRoundTripsAndRevalidates) {
  const TripleStore store = RandomStore(23, 250);
  const ShardedStore sharded = ShardedStore::Build(store, 4);
  auto restored = ShardedStore::FromSnapshot(store, MakeParts(store, sharded),
                                             SnapshotValidation::kFull);
  ASSERT_TRUE(restored.ok()) << restored.status();
  ASSERT_EQ(restored->shard_count(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    const auto got = restored->members(i);
    const auto want = sharded.members(i);
    ASSERT_EQ(got.size(), want.size());
    EXPECT_TRUE(std::equal(got.begin(), got.end(), want.begin()));
  }
  ExpectStatsEqual(restored->MergedStats(), GraphStats::Compute(store));
}

TEST(ShardedStoreTest, FromSnapshotRejectsCorruptParts) {
  const TripleStore store = RandomStore(29, 250);
  const ShardedStore sharded = ShardedStore::Build(store, 4);

  {  // Zero shards.
    auto r = ShardedStore::FromSnapshot(store, {});
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  {  // Member id out of range.
    auto parts = MakeParts(store, sharded);
    std::vector<TripleId> m(parts[0].members.span().begin(),
                            parts[0].members.span().end());
    ASSERT_FALSE(m.empty());
    m.back() = static_cast<TripleId>(store.size());
    parts[0].members = util::OwnedSpan<TripleId>(std::move(m));
    auto r = ShardedStore::FromSnapshot(store, std::move(parts));
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  {  // Not strictly ascending (duplicate).
    auto parts = MakeParts(store, sharded);
    std::vector<TripleId> m(parts[1].members.span().begin(),
                            parts[1].members.span().end());
    ASSERT_GE(m.size(), 2u);
    m[1] = m[0];
    parts[1].members = util::OwnedSpan<TripleId>(std::move(m));
    auto r = ShardedStore::FromSnapshot(store, std::move(parts));
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  {  // A member whose subject hashes to a different shard.
    auto parts = MakeParts(store, sharded);
    std::vector<TripleId> a(parts[0].members.span().begin(),
                            parts[0].members.span().end());
    std::vector<TripleId> b(parts[1].members.span().begin(),
                            parts[1].members.span().end());
    ASSERT_FALSE(a.empty());
    ASSERT_FALSE(b.empty());
    std::swap(a.back(), b.back());
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    parts[0].members = util::OwnedSpan<TripleId>(std::move(a));
    parts[1].members = util::OwnedSpan<TripleId>(std::move(b));
    auto r = ShardedStore::FromSnapshot(store, std::move(parts));
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  {  // Sizes not summing to the store (one member dropped).
    auto parts = MakeParts(store, sharded);
    std::vector<TripleId> m(parts[2].members.span().begin(),
                            parts[2].members.span().end());
    ASSERT_FALSE(m.empty());
    m.pop_back();
    parts[2].members = util::OwnedSpan<TripleId>(std::move(m));
    auto r = ShardedStore::FromSnapshot(store, std::move(parts));
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  // The untampered parts still restore (the fixtures above were the
  // only corruption).
  auto ok = ShardedStore::FromSnapshot(store, MakeParts(store, sharded));
  EXPECT_TRUE(ok.ok()) << ok.status();
}

}  // namespace
}  // namespace trinit::rdf
