// Tests for the score-ordered posting lists: every pattern shape must
// return exactly the Match() id set, in descending emission-weight
// order, with the block mass equal to the summed counts — on a curated
// store and on randomized ones.

#include "rdf/score_order_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>

#include "rdf/triple_store.h"
#include "util/random.h"

namespace trinit::rdf {
namespace {

TripleStore SmallStore() {
  TripleStoreBuilder b;
  // Distinct weights within the p=1 block: 5*1.0, 2*0.9, 1*0.4.
  b.Add(1, 1, 2, /*confidence=*/1.0f, /*count=*/5);
  b.Add(1, 1, 3, 0.9f, 2);
  b.Add(2, 1, 3, 0.4f, 1);
  b.Add(2, 2, 3, 1.0f, 1);
  b.Add(3, 2, 2, 0.5f, 4);
  auto r = b.Build();
  EXPECT_TRUE(r.ok()) << r.status();
  return std::move(r).value();
}

void CheckList(const TripleStore& store, TermId s, TermId p, TermId o) {
  ScoreOrderIndex::List list = store.ScoreOrdered(s, p, o);
  std::span<const TripleId> match = store.Match(s, p, o);

  // Same id set as the unordered access path.
  std::set<TripleId> list_ids(list.ids.begin(), list.ids.end());
  std::set<TripleId> match_ids(match.begin(), match.end());
  EXPECT_EQ(list_ids, match_ids) << "(" << s << "," << p << "," << o << ")";

  // Descending emission weight, ids break ties ascending.
  for (size_t i = 1; i < list.ids.size(); ++i) {
    double prev = ScoreOrderIndex::WeightOf(store.triple(list.ids[i - 1]));
    double cur = ScoreOrderIndex::WeightOf(store.triple(list.ids[i]));
    EXPECT_GE(prev, cur);
    if (prev == cur) EXPECT_LT(list.ids[i - 1], list.ids[i]);
  }

  // Prefix-mass sums match a span walk.
  uint64_t mass = 0;
  for (TripleId id : match) mass += store.triple(id).count;
  EXPECT_EQ(list.mass, mass);
}

TEST(ScoreOrderIndexTest, AllShapesMatchAndDescend) {
  TripleStore store = SmallStore();
  const TermId kAny = kNullTerm;
  for (TermId s : {kAny, TermId{1}, TermId{2}, TermId{3}, TermId{9}}) {
    for (TermId p : {kAny, TermId{1}, TermId{2}, TermId{9}}) {
      for (TermId o : {kAny, TermId{2}, TermId{3}, TermId{9}}) {
        CheckList(store, s, p, o);
      }
    }
  }
}

TEST(ScoreOrderIndexTest, PredicateListOrderedByWeight) {
  TripleStore store = SmallStore();
  ScoreOrderIndex::List list = store.ScoreOrdered(kNullTerm, 1, kNullTerm);
  ASSERT_EQ(list.ids.size(), 3u);
  EXPECT_EQ(store.triple(list.ids[0]).count, 5u);   // weight 5.0
  EXPECT_EQ(store.triple(list.ids[1]).count, 2u);   // weight 1.8
  EXPECT_EQ(store.triple(list.ids[2]).count, 1u);   // weight 0.4
  EXPECT_EQ(list.mass, 8u);
}

TEST(ScoreOrderIndexTest, EmptyStoreAndEmptyBlocks) {
  TripleStore empty;
  EXPECT_TRUE(empty.ScoreOrdered(kNullTerm, kNullTerm, kNullTerm).ids.empty());
  TripleStore store = SmallStore();
  ScoreOrderIndex::List miss = store.ScoreOrdered(9, kNullTerm, kNullTerm);
  EXPECT_TRUE(miss.ids.empty());
  EXPECT_EQ(miss.mass, 0u);
}

TEST(ScoreOrderIndexTest, ExactPatternServedFromMatchPath) {
  TripleStore store = SmallStore();
  ScoreOrderIndex::List exact = store.ScoreOrdered(1, 1, 2);
  ASSERT_EQ(exact.ids.size(), 1u);
  EXPECT_EQ(exact.mass, 5u);  // the triple's own count
  EXPECT_TRUE(store.ScoreOrdered(1, 2, 2).ids.empty());
}

TEST(ScoreOrderIndexTest, RandomizedStoresAgreeWithMatch) {
  Rng rng(7);
  for (int round = 0; round < 5; ++round) {
    TripleStoreBuilder b;
    int n = 50 + static_cast<int>(rng.Uniform(200));
    for (int i = 0; i < n; ++i) {
      b.Add(1 + static_cast<TermId>(rng.Uniform(12)),
            1 + static_cast<TermId>(rng.Uniform(5)),
            1 + static_cast<TermId>(rng.Uniform(12)),
            0.1f + 0.9f * static_cast<float>(rng.UniformDouble()),
            1 + static_cast<uint32_t>(rng.Uniform(6)));
    }
    auto r = b.Build();
    ASSERT_TRUE(r.ok());
    for (int probe = 0; probe < 30; ++probe) {
      TermId s = rng.Bernoulli(0.5)
                     ? 1 + static_cast<TermId>(rng.Uniform(12))
                     : kNullTerm;
      TermId p = rng.Bernoulli(0.5)
                     ? 1 + static_cast<TermId>(rng.Uniform(5))
                     : kNullTerm;
      TermId o = rng.Bernoulli(0.5)
                     ? 1 + static_cast<TermId>(rng.Uniform(12))
                     : kNullTerm;
      CheckList(*r, s, p, o);
    }
  }
}

TEST(ScoreOrderIndexTest, ShapesBuildLazilyOnFirstLookup) {
  TripleStore store = SmallStore();
  // Build materializes nothing; each distinct shape sorts on first use.
  EXPECT_EQ(store.score_shapes_built(), 0u);
  store.ScoreOrdered(kNullTerm, 1, kNullTerm);  // P shape
  EXPECT_EQ(store.score_shapes_built(), 1u);
  store.ScoreOrdered(kNullTerm, 2, kNullTerm);  // P again: already built
  EXPECT_EQ(store.score_shapes_built(), 1u);
  store.ScoreOrdered(1, kNullTerm, 3);  // SO shape
  EXPECT_EQ(store.score_shapes_built(), 2u);
  store.ScoreOrdered(1, 1, 2);  // fully bound: exact path, no shape
  EXPECT_EQ(store.score_shapes_built(), 2u);
}

TEST(ScoreOrderIndexTest, LazyShapesSurviveStoreMove) {
  TripleStore store = SmallStore();
  store.ScoreOrdered(kNullTerm, 1, kNullTerm);
  // The once_flags sit behind a stable allocation: a moved-to store
  // keeps the built shape and can still build the rest.
  TripleStore moved = std::move(store);
  EXPECT_EQ(moved.score_shapes_built(), 1u);
  CheckList(moved, kNullTerm, 1, kNullTerm);
  CheckList(moved, 2, kNullTerm, kNullTerm);
  EXPECT_EQ(moved.score_shapes_built(), 2u);
}

TEST(ScoreOrderIndexTest, ConcurrentFirstTouchIsSafeAndConsistent) {
  // Many threads race the first lookup of every shape at once; each
  // must see a fully built permutation (same content as a fresh
  // single-threaded store), never a partial sort.
  Rng rng(23);
  TripleStoreBuilder b1, b2;
  for (int i = 0; i < 400; ++i) {
    TermId s = 1 + static_cast<TermId>(rng.Uniform(15));
    TermId p = 1 + static_cast<TermId>(rng.Uniform(6));
    TermId o = 1 + static_cast<TermId>(rng.Uniform(15));
    float conf = 0.1f + 0.9f * static_cast<float>(rng.UniformDouble());
    uint32_t count = 1 + static_cast<uint32_t>(rng.Uniform(6));
    b1.Add(s, p, o, conf, count);
    b2.Add(s, p, o, conf, count);
  }
  auto shared = b1.Build();
  auto reference = b2.Build();
  ASSERT_TRUE(shared.ok() && reference.ok());

  // Every (shape, key) probe each thread will run, precomputed so the
  // threads only touch const store state.
  struct Probe {
    TermId s, p, o;
  };
  std::vector<Probe> probes;
  for (TermId a = 1; a <= 6; ++a) {
    probes.push_back({kNullTerm, kNullTerm, kNullTerm});
    probes.push_back({a, kNullTerm, kNullTerm});
    probes.push_back({kNullTerm, a, kNullTerm});
    probes.push_back({kNullTerm, kNullTerm, a});
    probes.push_back({a, a, kNullTerm});
    probes.push_back({a, kNullTerm, a});
    probes.push_back({kNullTerm, a, a});
  }

  std::atomic<size_t> mismatches{0};
  auto worker = [&]() {
    for (const Probe& probe : probes) {
      ScoreOrderIndex::List got =
          shared->ScoreOrdered(probe.s, probe.p, probe.o);
      ScoreOrderIndex::List want =
          reference->ScoreOrdered(probe.s, probe.p, probe.o);
      if (got.mass != want.mass || got.ids.size() != want.ids.size() ||
          !std::equal(got.ids.begin(), got.ids.end(), want.ids.begin())) {
        mismatches.fetch_add(1);
      }
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(shared->score_shapes_built(), 7u);
}

}  // namespace
}  // namespace trinit::rdf
