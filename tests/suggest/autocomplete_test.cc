#include "suggest/autocomplete.h"

#include <gtest/gtest.h>

#include "testing/paper_world.h"

namespace trinit::suggest {
namespace {

class AutocompleteTest : public ::testing::Test {
 protected:
  AutocompleteTest()
      : xkg_(testing::BuildPaperXkg()), complete_(xkg_) {}

  xkg::Xkg xkg_;
  Autocomplete complete_;
};

TEST_F(AutocompleteTest, PrefixOfResourceLabel) {
  auto completions = complete_.Complete("Princ");
  ASSERT_FALSE(completions.empty());
  EXPECT_EQ(completions[0].text, "PrincetonUniversity");
}

TEST_F(AutocompleteTest, CaseInsensitive) {
  auto completions = complete_.Complete("albert");
  ASSERT_FALSE(completions.empty());
  EXPECT_EQ(completions[0].text, "AlbertEinstein");
}

TEST_F(AutocompleteTest, TokenPhrasesCompleteByWord) {
  // "housed" is a word inside the token phrase 'housed in'.
  auto completions = complete_.Complete("housed");
  ASSERT_FALSE(completions.empty());
  EXPECT_EQ(completions[0].text, "'housed in'");
  EXPECT_EQ(completions[0].kind, rdf::TermKind::kToken);
}

TEST_F(AutocompleteTest, RanksByOccurrence) {
  // AlbertEinstein occurs in far more triples than AlfredKleiner; both
  // complete from "al".
  auto completions = complete_.Complete("al");
  ASSERT_GE(completions.size(), 2u);
  EXPECT_EQ(completions[0].text, "AlbertEinstein");
  for (size_t i = 1; i < completions.size(); ++i) {
    EXPECT_LE(completions[i].score, completions[i - 1].score);
  }
}

TEST_F(AutocompleteTest, PredicateModeFiltersToPredicates) {
  auto all = complete_.Complete("b");
  auto preds = complete_.CompletePredicate("b");
  // "bornIn"/"bornOn" are predicates; "b..." entities are not.
  ASSERT_FALSE(preds.empty());
  for (const Completion& c : preds) {
    EXPECT_NE(xkg_.stats().ForPredicate(c.term), nullptr) << c.text;
  }
  EXPECT_GE(all.size(), preds.size());
}

TEST_F(AutocompleteTest, LimitRespected) {
  auto completions = complete_.Complete("a", 1);
  EXPECT_EQ(completions.size(), 1u);
}

TEST_F(AutocompleteTest, EmptyAndUnknownPrefixes) {
  EXPECT_TRUE(complete_.Complete("").empty());
  EXPECT_TRUE(complete_.Complete("zzzzz").empty());
}

TEST_F(AutocompleteTest, NoDuplicateTerms) {
  // 'won nobel for' contains both "won" and "nobel"; completing "won"
  // must return the phrase once.
  auto completions = complete_.Complete("won");
  std::set<rdf::TermId> seen;
  for (const Completion& c : completions) {
    EXPECT_TRUE(seen.insert(c.term).second) << c.text;
  }
}

}  // namespace
}  // namespace trinit::suggest
