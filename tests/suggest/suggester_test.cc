#include "suggest/suggester.h"

#include <gtest/gtest.h>

#include "query/parser.h"
#include "testing/paper_world.h"
#include "topk/topk_processor.h"
#include "xkg/xkg_builder.h"

namespace trinit::suggest {
namespace {

// World where the token predicate 'works at' heavily overlaps the KG
// predicate affiliation.
xkg::Xkg OverlapWorld() {
  xkg::XkgBuilder b;
  for (int i = 0; i < 6; ++i) {
    std::string person = "Person" + std::to_string(i);
    std::string uni = "University" + std::to_string(i % 2);
    b.AddKgFact(person, "affiliation", uni);
    if (i < 5) {
      b.AddExtraction(person, true, "works at", uni, true, 0.8f,
                      {static_cast<uint32_t>(i), 0,
                       person + " works at " + uni + ".", 0.8});
    }
  }
  auto r = b.Build();
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

TEST(SuggesterTest, TokenPredicateSuggestsKgPredicate) {
  xkg::Xkg xkg = OverlapWorld();
  Suggester suggester(xkg);
  auto q = query::Parser::Parse("?x 'works at' ?y", &xkg.dict());
  ASSERT_TRUE(q.ok());
  auto suggestions = suggester.Suggest(*q, {});
  ASSERT_FALSE(suggestions.empty());
  bool found = false;
  for (const Suggestion& s : suggestions) {
    if (s.kind == Suggestion::Kind::kTokenPredicateToResource &&
        s.replacement == "affiliation") {
      found = true;
      EXPECT_GT(s.score, 0.5);
    }
  }
  EXPECT_TRUE(found);
}

TEST(SuggesterTest, TokenEntitySuggestsResource) {
  xkg::Xkg xkg = testing::BuildPaperXkg();
  Suggester suggester(xkg);
  auto q = query::Parser::Parse(
      "'albert einstein' 'lectured at' ?y", &xkg.dict());
  ASSERT_TRUE(q.ok());
  auto suggestions = suggester.Suggest(*q, {});
  bool found = false;
  for (const Suggestion& s : suggestions) {
    if (s.kind == Suggestion::Kind::kTokenEntityToResource) {
      // Resource label AlbertEinstein has no word boundary, so the
      // match may fail; the institute names do tokenize. Accept any
      // entity suggestion here.
      found = true;
    }
  }
  // Entity suggestions depend on tokenizable labels; don't require one
  // for camel-case labels, but the call must not crash and ordering
  // must be by score.
  for (size_t i = 1; i < suggestions.size(); ++i) {
    EXPECT_GE(suggestions[i - 1].score, suggestions[i].score);
  }
  (void)found;
}

TEST(SuggesterTest, EntitySuggestionForUnderscoreLabels) {
  xkg::XkgBuilder b;
  b.AddKgFact("Anna_Keller_3", "affiliation", "University_of_Graustadt_1");
  b.AddExtraction("x", false, "mentions", "y", false, 0.5f,
                  {1, 0, "noise", 0.5});
  auto r = b.Build();
  ASSERT_TRUE(r.ok());
  Suggester suggester(*r);
  auto q = query::Parser::Parse("'anna keller' affiliation ?y", &r->dict());
  ASSERT_TRUE(q.ok());
  auto suggestions = suggester.Suggest(*q, {});
  bool found = false;
  for (const Suggestion& s : suggestions) {
    if (s.kind == Suggestion::Kind::kTokenEntityToResource &&
        s.replacement == "Anna_Keller_3") {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(SuggesterTest, RuleFeedbackFromAnswers) {
  xkg::Xkg xkg = testing::BuildPaperXkg();
  relax::RuleSet rules = testing::BuildPaperRules();
  topk::ProcessorOptions opts;
  opts.k = 5;
  topk::TopKProcessor processor(xkg, rules, {}, opts);
  auto q = query::Parser::Parse("AlbertEinstein hasAdvisor ?x",
                                &xkg.dict());
  ASSERT_TRUE(q.ok());
  auto result = processor.Answer(*q);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->answers.empty());

  Suggester suggester(xkg);
  auto suggestions = suggester.Suggest(*q, result->answers);
  bool found = false;
  for (const Suggestion& s : suggestions) {
    if (s.kind == Suggestion::Kind::kRuleFeedback &&
        s.replacement == "rule2") {
      found = true;
      EXPECT_NE(s.message.find("rule2"), std::string::npos);
    }
  }
  EXPECT_TRUE(found);
}

TEST(SuggesterTest, NoSuggestionsForPlainResolvedQuery) {
  xkg::Xkg xkg = testing::BuildPaperXkg();
  Suggester suggester(xkg);
  auto q = query::Parser::Parse("AlbertEinstein bornIn ?x", &xkg.dict());
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(suggester.Suggest(*q, {}).empty());
}

TEST(SuggesterTest, MaxSuggestionsHonored) {
  xkg::Xkg xkg = OverlapWorld();
  Suggester::Options opts;
  opts.max_suggestions = 1;
  opts.min_predicate_overlap = 0.0;
  Suggester suggester(xkg, opts);
  auto q = query::Parser::Parse("?x 'works at' ?y", &xkg.dict());
  ASSERT_TRUE(q.ok());
  EXPECT_LE(suggester.Suggest(*q, {}).size(), 1u);
}

}  // namespace
}  // namespace trinit::suggest
