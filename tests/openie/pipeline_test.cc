#include "openie/pipeline.h"

#include <gtest/gtest.h>

#include "synth/corpus_generator.h"

namespace trinit::openie {
namespace {

synth::WorldSpec SmallSpec() {
  synth::WorldSpec spec;
  spec.seed = 19;
  spec.num_persons = 50;
  spec.num_universities = 7;
  spec.num_institutes = 4;
  spec.num_cities = 10;
  spec.num_countries = 3;
  spec.num_prizes = 3;
  spec.num_fields = 5;
  spec.predicates = synth::WorldSpec::DefaultPredicates();
  return spec;
}

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    world_ = synth::KgGenerator::Generate(SmallSpec());
    docs_ = synth::CorpusGenerator::Generate(world_);
    synth::KgGenerator::PopulateKg(world_, &builder_);
    Pipeline pipeline(Extractor(), Pipeline::LinkerForWorld(world_));
    stats_ = pipeline.Run(docs_, &builder_);
    auto r = builder_.Build();
    ASSERT_TRUE(r.ok());
    xkg_.emplace(std::move(r).value());
  }

  synth::World world_;
  std::vector<synth::Document> docs_;
  xkg::XkgBuilder builder_;
  Pipeline::Stats stats_;
  std::optional<xkg::Xkg> xkg_;
};

TEST_F(PipelineTest, ProducesExtractions) {
  EXPECT_GT(stats_.documents, 0u);
  EXPECT_GT(stats_.sentences, stats_.documents);
  EXPECT_GT(stats_.extractions, 100u);
  EXPECT_GT(stats_.arguments_linked, 0u);
  EXPECT_GT(stats_.arguments_token, 0u);
}

TEST_F(PipelineTest, ExtractionLayerLargerThanKg) {
  // The paper's XKG is ~7.8x extraction vs KG; ours must at least have
  // a substantial extraction layer.
  EXPECT_GT(xkg_->extraction_triple_count(), 0u);
  EXPECT_GT(xkg_->kg_triple_count(), 0u);
  double ratio = static_cast<double>(xkg_->extraction_triple_count()) /
                 static_cast<double>(xkg_->kg_triple_count());
  EXPECT_GT(ratio, 0.4) << "extraction layer implausibly small";
}

TEST_F(PipelineTest, ExtractionTriplesHaveProvenance) {
  size_t with_prov = 0;
  for (rdf::TripleId id = 0; id < xkg_->store().size(); ++id) {
    if (!xkg_->IsKgTriple(id)) {
      const auto& prov = xkg_->ProvenanceFor(id);
      if (!prov.empty()) {
        ++with_prov;
        EXPECT_FALSE(prov[0].sentence.empty());
      }
    }
  }
  EXPECT_GT(with_prov, 0u);
}

TEST_F(PipelineTest, TokenPredicatesEnterDictionary) {
  // The paraphrase "works at" must exist as a token predicate.
  rdf::TermId works_at =
      xkg_->dict().Find(rdf::TermKind::kToken, "works at");
  ASSERT_NE(works_at, rdf::kNullTerm);
  EXPECT_GT(xkg_->store()
                .Match(rdf::kNullTerm, works_at, rdf::kNullTerm)
                .size(),
            0u);
}

TEST_F(PipelineTest, HeldOutFactsRecoverableFromXkg) {
  // Find a held-out affiliation fact whose subject alias is unambiguous
  // enough to have been linked; the XKG should contain *some* extraction
  // triple linking subject and object entities.
  size_t pi = world_.PredicateIndex("affiliation");
  size_t recovered = 0, checked = 0;
  for (const synth::Fact& f : world_.facts) {
    if (f.predicate != pi || f.in_kg) continue;
    ++checked;
    rdf::TermId s = xkg_->dict().Find(rdf::TermKind::kResource,
                                      world_.entities[f.subject].name);
    rdf::TermId o = xkg_->dict().Find(rdf::TermKind::kResource,
                                      world_.entities[f.object].name);
    if (s == rdf::kNullTerm || o == rdf::kNullTerm) continue;
    if (!xkg_->store().Match(s, rdf::kNullTerm, o).empty()) ++recovered;
  }
  ASSERT_GT(checked, 0u);
  // Not all are recoverable (ambiguous aliases stay tokens), but a
  // meaningful fraction must be — that is the whole point of the XKG.
  EXPECT_GT(recovered, checked / 4);
}

TEST_F(PipelineTest, LinkerForWorldCoversAllEntities) {
  Linker linker = Pipeline::LinkerForWorld(world_);
  size_t linked = 0;
  for (const synth::Entity& e : world_.entities) {
    if (linker.Link(e.aliases[0]).linked) ++linked;
  }
  // Full-name aliases of most entities resolve (some surname-only
  // collisions are expected for persons).
  EXPECT_GT(linked, world_.entities.size() / 2);
}

}  // namespace
}  // namespace trinit::openie
