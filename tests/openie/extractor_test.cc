#include "openie/extractor.h"

#include <gtest/gtest.h>

namespace trinit::openie {
namespace {

TEST(ExtractorTest, ExtractsNpVpNp) {
  Extractor extractor;
  auto exs = extractor.ExtractSentence(
      "Anna Keller works at Norlin University.");
  ASSERT_EQ(exs.size(), 1u);
  EXPECT_EQ(exs[0].arg1, "Anna Keller");
  EXPECT_EQ(exs[0].relation, "works at");
  EXPECT_EQ(exs[0].arg2, "Norlin University");
  EXPECT_TRUE(exs[0].arg2_is_np);
  EXPECT_GT(exs[0].confidence, 0.5);
}

TEST(ExtractorTest, ExtractsFigure3Sentence) {
  Extractor extractor;
  auto exs = extractor.ExtractSentence(
      "Einstein won a Nobel for his discovery of the photoelectric "
      "effect.");
  // NP1 = Einstein, NP2 = Nobel ("a" lowercase splits), rationale tail.
  ASSERT_GE(exs.size(), 1u);
  EXPECT_EQ(exs[0].arg1, "Einstein");
  EXPECT_EQ(exs[0].arg2, "Nobel");
}

TEST(ExtractorTest, RationalePatternYieldsTokenObject) {
  Extractor extractor;
  auto exs = extractor.ExtractSentence(
      "Anna Keller won the Keller Prize for work on physics.");
  ASSERT_EQ(exs.size(), 2u);
  // Pattern 1: NP VP NP.
  EXPECT_EQ(exs[0].arg2, "Keller Prize");
  // Pattern 2: the rationale with a non-NP object.
  EXPECT_EQ(exs[1].arg1, "Anna Keller");
  EXPECT_EQ(exs[1].relation, "won the Keller Prize for");
  EXPECT_EQ(exs[1].arg2, "work on physics");
  EXPECT_FALSE(exs[1].arg2_is_np);
  EXPECT_LT(exs[1].confidence, exs[0].confidence);
}

TEST(ExtractorTest, MultipleClausesYieldMultipleExtractions) {
  Extractor extractor;
  auto exs = extractor.ExtractSentence(
      "Anna Keller met Boris Brandt and Clara Curie visited Heifeld "
      "University.");
  // (Anna Keller, met, Boris Brandt) and (Clara Curie, visited,
  // Heifeld University) — the middle "and" span belongs to the second
  // pair's gap (Boris Brandt —and— Clara Curie also qualifies).
  ASSERT_GE(exs.size(), 2u);
  EXPECT_EQ(exs.front().arg1, "Anna Keller");
  EXPECT_EQ(exs.back().arg2, "Heifeld University");
}

TEST(ExtractorTest, LongConnectiveRejected) {
  Extractor::Options opts;
  opts.max_relation_tokens = 3;
  Extractor extractor(opts);
  auto exs = extractor.ExtractSentence(
      "Anna Keller spent many of her later productive years at Norlin "
      "University.");
  EXPECT_TRUE(exs.empty());
}

TEST(ExtractorTest, ConfidenceDecreasesWithGapLength) {
  Extractor extractor;
  auto short_gap =
      extractor.ExtractSentence("Anna Keller met Boris Brandt.");
  auto long_gap = extractor.ExtractSentence(
      "Anna Keller wrote quite often to Boris Brandt.");
  ASSERT_EQ(short_gap.size(), 1u);
  ASSERT_EQ(long_gap.size(), 1u);
  EXPECT_GT(short_gap[0].confidence, long_gap[0].confidence);
}

TEST(ExtractorTest, AppendixClauseTrimmedFromTail) {
  Extractor extractor;
  auto exs = extractor.ExtractSentence(
      "Anna Keller won the Keller Prize for work on physics, according "
      "to several sources.");
  ASSERT_EQ(exs.size(), 2u);
  EXPECT_EQ(exs[1].arg2, "work on physics");
}

TEST(ExtractorTest, NoExtractionWithoutTwoNps) {
  Extractor extractor;
  EXPECT_TRUE(extractor.ExtractSentence("Anna Keller slept.").empty());
  EXPECT_TRUE(extractor.ExtractSentence("it rained.").empty());
}

TEST(ExtractorTest, ConfidenceBoundedBelow) {
  Extractor::Options opts;
  opts.min_confidence = 0.3;
  Extractor extractor(opts);
  auto exs = extractor.ExtractSentence(
      "Anna Keller debated at length with the one and only Boris Brandt "
      "about Clara Curie and Heifeld University.");
  for (const Extraction& ex : exs) {
    EXPECT_GE(ex.confidence, 0.3);
  }
}

}  // namespace
}  // namespace trinit::openie
