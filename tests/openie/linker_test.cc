#include "openie/linker.h"

#include <gtest/gtest.h>

namespace trinit::openie {
namespace {

TEST(LinkerTest, UnambiguousAliasLinks) {
  Linker linker;
  linker.AddAlias("Anna Keller", "Anna_Keller_3", 0.5);
  LinkResult r = linker.Link("Anna Keller");
  ASSERT_TRUE(r.linked);
  EXPECT_EQ(r.entity, "Anna_Keller_3");
  EXPECT_DOUBLE_EQ(r.confidence, 0.95);
  EXPECT_EQ(r.candidates, 1u);
}

TEST(LinkerTest, NormalizesSurfaceForms) {
  Linker linker;
  linker.AddAlias("Anna Keller", "Anna_Keller_3", 0.5);
  EXPECT_TRUE(linker.Link("anna  KELLER").linked);
  EXPECT_TRUE(linker.Link("Anna Keller,").linked);
}

TEST(LinkerTest, UnknownPhraseStaysToken) {
  Linker linker;
  linker.AddAlias("Anna Keller", "Anna_Keller_3", 0.5);
  LinkResult r = linker.Link("work on physics");
  EXPECT_FALSE(r.linked);
  EXPECT_EQ(r.candidates, 0u);
}

TEST(LinkerTest, AmbiguousAliasLinksOnlyWhenDominant) {
  Linker linker;
  linker.AddAlias("Keller", "Anna_Keller_3", 0.9);
  linker.AddAlias("Keller", "Karl_Keller_7", 0.1);
  LinkResult dominant = linker.Link("Keller");
  ASSERT_TRUE(dominant.linked);
  EXPECT_EQ(dominant.entity, "Anna_Keller_3");
  EXPECT_DOUBLE_EQ(dominant.confidence, 0.7);
  EXPECT_EQ(dominant.candidates, 2u);

  Linker balanced;
  balanced.AddAlias("Keller", "Anna_Keller_3", 0.5);
  balanced.AddAlias("Keller", "Karl_Keller_7", 0.5);
  EXPECT_FALSE(balanced.Link("Keller").linked);
}

TEST(LinkerTest, DominanceThresholdConfigurable) {
  Linker::Options opts;
  opts.dominance_threshold = 0.45;
  Linker linker(opts);
  linker.AddAlias("Keller", "Anna_Keller_3", 0.5);
  linker.AddAlias("Keller", "Karl_Keller_7", 0.5);
  // 0.5 share >= 0.45 threshold: the (max-popularity) candidate links.
  EXPECT_TRUE(linker.Link("Keller").linked);
}

TEST(LinkerTest, DuplicateAliasKeepsMaxPopularity) {
  Linker linker;
  linker.AddAlias("Keller", "Anna_Keller_3", 0.2);
  linker.AddAlias("Keller", "Anna_Keller_3", 0.8);
  linker.AddAlias("Keller", "Karl_Keller_7", 0.1);
  LinkResult r = linker.Link("Keller");
  EXPECT_EQ(r.candidates, 2u);
  ASSERT_TRUE(r.linked);
  EXPECT_EQ(r.entity, "Anna_Keller_3");
}

TEST(LinkerTest, EmptyAliasIgnored) {
  Linker linker;
  linker.AddAlias("...", "X", 0.5);  // normalizes to nothing
  EXPECT_EQ(linker.alias_count(), 0u);
}

}  // namespace
}  // namespace trinit::openie
