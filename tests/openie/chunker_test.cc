#include "openie/chunker.h"

#include <gtest/gtest.h>

namespace trinit::openie {
namespace {

std::vector<std::string> NounPhrases(std::string_view sentence) {
  std::vector<std::string> out;
  for (const Chunk& c : Chunker::Segment(sentence)) {
    if (c.kind == Chunk::Kind::kNounPhrase) out.push_back(c.text);
  }
  return out;
}

TEST(ChunkerTest, FindsCapitalizedRuns) {
  auto nps = NounPhrases("Anna Keller works at Graustadt University.");
  ASSERT_EQ(nps.size(), 2u);
  EXPECT_EQ(nps[0], "Anna Keller");
  EXPECT_EQ(nps[1], "Graustadt University");
}

TEST(ChunkerTest, OfGluesNounPhrases) {
  auto nps = NounPhrases("Boris Brandt lectured at University of Heisee.");
  ASSERT_EQ(nps.size(), 2u);
  EXPECT_EQ(nps[1], "University of Heisee");
}

TEST(ChunkerTest, SentenceInitialFunctionWordIsNotNp) {
  auto nps = NounPhrases("The Institute for Physics is housed in Ulmstad.");
  // "The" must not merge into the NP; "Institute for Physics" starts at
  // "Institute"... "for" is not glue, so the NP is just "Institute".
  ASSERT_FALSE(nps.empty());
  EXPECT_EQ(nps[0], "Institute");
}

TEST(ChunkerTest, YearPrefixDoesNotOpenNp) {
  auto nps = NounPhrases("In 1905, Anna Keller won the Keller Prize.");
  ASSERT_EQ(nps.size(), 2u);
  EXPECT_EQ(nps[0], "Anna Keller");
  EXPECT_EQ(nps[1], "Keller Prize");
}

TEST(ChunkerTest, DigitsExtendNps) {
  auto nps = NounPhrases("Clara Curie visited Ulmberg7 yesterday.");
  ASSERT_EQ(nps.size(), 2u);
  EXPECT_EQ(nps[1], "Ulmberg7");
}

TEST(ChunkerTest, TextSpansBetweenNps) {
  auto chunks = Chunker::Segment("Anna Keller is employed by Norlin "
                                 "University.");
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks[0].kind, Chunk::Kind::kNounPhrase);
  EXPECT_EQ(chunks[1].kind, Chunk::Kind::kText);
  EXPECT_EQ(chunks[1].text, "is employed by");
  EXPECT_EQ(chunks[2].kind, Chunk::Kind::kNounPhrase);
}

TEST(ChunkerTest, TrailingTailIsTextChunk) {
  auto chunks =
      Chunker::Segment("Anna Keller won the Keller Prize for work on "
                       "physics.");
  ASSERT_GE(chunks.size(), 4u);
  EXPECT_EQ(chunks.back().kind, Chunk::Kind::kText);
  EXPECT_EQ(chunks.back().text, "for work on physics");
}

TEST(ChunkerTest, EmptyAndNoNpSentences) {
  EXPECT_TRUE(Chunker::Segment("").empty());
  auto chunks = Chunker::Segment("it rained all day.");
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].kind, Chunk::Kind::kText);
}

TEST(ChunkerTest, TokenOffsetsAreConsistent) {
  auto chunks = Chunker::Segment("Anna Keller met Boris Brandt.");
  size_t prev_end = 0;
  for (const Chunk& c : chunks) {
    EXPECT_EQ(c.token_begin, prev_end);
    EXPECT_GT(c.token_end, c.token_begin);
    prev_end = c.token_end;
  }
}

}  // namespace
}  // namespace trinit::openie
