// Property test: rendering a query with ToString() and re-parsing it
// yields the identical query, across randomized query shapes. This pins
// the parser and printer to one grammar — regressions in either break
// rule files, workload files, and the rewriter's canonical keys.

#include <gtest/gtest.h>

#include "query/parser.h"
#include "util/random.h"

namespace trinit::query {
namespace {

Term RandomTerm(Rng& rng, int var_pool) {
  switch (rng.Uniform(4)) {
    case 0:
      return Term::Variable("v" + std::to_string(rng.Uniform(var_pool)));
    case 1:
      return Term::Resource("Entity_" + std::to_string(rng.Uniform(50)));
    case 2: {
      static const char* words[] = {"won", "nobel", "works", "at",
                                    "housed", "in", "prize"};
      std::string phrase = words[rng.Uniform(7)];
      for (size_t i = 0; i < rng.Uniform(3); ++i) {
        phrase += " " + std::string(words[rng.Uniform(7)]);
      }
      return Term::Token(phrase);
    }
    default:
      return Term::Literal("18" + std::to_string(10 + rng.Uniform(90)) +
                           "-0" + std::to_string(1 + rng.Uniform(9)));
  }
}

class ParserRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserRoundTripTest, ToStringParsesBackIdentically) {
  Rng rng(GetParam());
  for (int iteration = 0; iteration < 50; ++iteration) {
    size_t num_patterns = 1 + rng.Uniform(3);
    std::vector<TriplePattern> patterns;
    for (size_t i = 0; i < num_patterns; ++i) {
      patterns.push_back(
          TriplePattern{RandomTerm(rng, 4), RandomTerm(rng, 4),
                        RandomTerm(rng, 4)});
    }
    Query q(std::move(patterns), {});
    if (!q.Validate().ok()) continue;  // e.g. all-constant corner cases

    // Projection: random subset of the variables (possibly empty).
    std::vector<std::string> vars = q.Variables();
    std::vector<std::string> projection;
    for (const std::string& v : vars) {
      if (rng.Bernoulli(0.4)) projection.push_back(v);
    }
    Query with_proj(q.patterns(), projection);

    auto reparsed = Parser::Parse(with_proj.ToString());
    ASSERT_TRUE(reparsed.ok())
        << with_proj.ToString() << " -> " << reparsed.status();
    EXPECT_EQ(*reparsed, with_proj) << with_proj.ToString();
    // And a second round trip is a fixed point.
    EXPECT_EQ(reparsed->ToString(), with_proj.ToString());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRoundTripTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace trinit::query
