#include "query/parser.h"

#include <gtest/gtest.h>

namespace trinit::query {
namespace {

TEST(ParserTest, ParsesUserAQuery) {
  auto r = Parser::Parse("?x bornIn Germany");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->patterns().size(), 1u);
  const TriplePattern& p = r->patterns()[0];
  EXPECT_EQ(p.s, Term::Variable("x"));
  EXPECT_EQ(p.p, Term::Resource("bornIn"));
  EXPECT_EQ(p.o, Term::Resource("Germany"));
  EXPECT_TRUE(r->projection().empty());
}

TEST(ParserTest, ParsesUserBQuery) {
  auto r = Parser::Parse("AlbertEinstein hasAdvisor ?x");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->patterns()[0].s, Term::Resource("AlbertEinstein"));
  EXPECT_EQ(r->patterns()[0].o, Term::Variable("x"));
}

TEST(ParserTest, ParsesUserCJoinQuery) {
  auto r =
      Parser::Parse("AlbertEinstein affiliation ?x ; ?x member IvyLeague");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->patterns().size(), 2u);
  EXPECT_EQ(r->patterns()[1].s, Term::Variable("x"));
}

TEST(ParserTest, ParsesTokenTriplePattern) {
  auto r = Parser::Parse("AlbertEinstein 'won nobel for' ?x");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->patterns()[0].p.kind, Term::Kind::kToken);
  EXPECT_EQ(r->patterns()[0].p.text, "won nobel for");
}

TEST(ParserTest, NormalizesTokenPhrases) {
  auto r = Parser::Parse("?x 'Won  A NOBEL for!' ?y");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->patterns()[0].p.text, "won a nobel for");
}

TEST(ParserTest, ParsesLiterals) {
  auto r = Parser::Parse("AlbertEinstein bornOn \"1879-03-14\"");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->patterns()[0].o.kind, Term::Kind::kLiteral);
  EXPECT_EQ(r->patterns()[0].o.text, "1879-03-14");
}

TEST(ParserTest, ParsesSelectClause) {
  auto r = Parser::Parse(
      "SELECT ?x WHERE AlbertEinstein affiliation ?x ; ?x member IvyLeague");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->projection(), (std::vector<std::string>{"x"}));
}

TEST(ParserTest, LowercaseSelectWhere) {
  auto r = Parser::Parse("select ?a where ?a p ?b");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->projection(), (std::vector<std::string>{"a"}));
}

TEST(ParserTest, DotSeparatorAccepted) {
  auto r = Parser::Parse("?x p ?y . ?y q ?z");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->patterns().size(), 2u);
}

TEST(ParserTest, TokensInAnySlot) {
  auto r = Parser::Parse("'the institute' 'housed in' 'princeton'");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->patterns()[0].s.kind, Term::Kind::kToken);
  EXPECT_EQ(r->patterns()[0].p.kind, Term::Kind::kToken);
  EXPECT_EQ(r->patterns()[0].o.kind, Term::Kind::kToken);
}

TEST(ParserTest, ResolvesAgainstDictionary) {
  rdf::Dictionary dict;
  rdf::TermId ulm = dict.InternResource("Ulm");
  auto r = Parser::Parse("?x bornIn Ulm", &dict);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->patterns()[0].o.id, ulm);
  EXPECT_EQ(r->patterns()[0].p.id, rdf::kNullTerm);  // not interned
}

struct BadQueryCase {
  const char* input;
  const char* why;
};

class ParserErrorTest : public ::testing::TestWithParam<BadQueryCase> {};

TEST_P(ParserErrorTest, RejectsMalformedInput) {
  auto r = Parser::Parse(GetParam().input);
  ASSERT_FALSE(r.ok()) << GetParam().why;
  // Lexical/syntactic problems surface as ParseError; semantic ones
  // (validation) as InvalidArgument.
  EXPECT_TRUE(r.status().code() == StatusCode::kParseError ||
              r.status().code() == StatusCode::kInvalidArgument)
      << GetParam().why << ": " << r.status();
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParserErrorTest,
    ::testing::Values(
        BadQueryCase{"", "empty query"},
        BadQueryCase{"   \t ", "whitespace only"},
        BadQueryCase{"?x bornIn", "incomplete pattern"},
        BadQueryCase{"?x bornIn Germany ;", "trailing separator"},
        BadQueryCase{"?x bornIn Germany ?y q ?z", "missing separator"},
        BadQueryCase{"SELECT ?x ?x p ?y", "select without where"},
        BadQueryCase{"SELECT WHERE ?x p ?y", "empty projection"},
        BadQueryCase{"SELECT x WHERE ?x p ?y", "non-variable projection"},
        BadQueryCase{"SELECT ?z WHERE ?x p ?y", "projection var not used"},
        BadQueryCase{"?x 'unterminated ?y", "unterminated quote"},
        BadQueryCase{"? p o", "empty variable name"},
        BadQueryCase{"?x '!!!' ?y", "token with no word chars"}));

}  // namespace
}  // namespace trinit::query
