#include "query/query.h"

#include <gtest/gtest.h>

namespace trinit::query {
namespace {

TEST(TermTest, FactoriesSetKind) {
  EXPECT_TRUE(Term::Variable("x").is_variable());
  EXPECT_TRUE(Term::Resource("Ulm").is_constant());
  EXPECT_EQ(Term::Token("Won A Nobel").text, "won a nobel");  // normalized
  EXPECT_EQ(Term::Literal("1879-03-14").kind, Term::Kind::kLiteral);
}

TEST(TermTest, ToStringUsesQuerySyntax) {
  EXPECT_EQ(Term::Variable("x").ToString(), "?x");
  EXPECT_EQ(Term::Resource("Ulm").ToString(), "Ulm");
  EXPECT_EQ(Term::Token("won nobel for").ToString(), "'won nobel for'");
  EXPECT_EQ(Term::Literal("1879-03-14").ToString(), "\"1879-03-14\"");
}

TEST(TriplePatternTest, VariablesDeduplicated) {
  TriplePattern p{Term::Variable("x"), Term::Resource("knows"),
                  Term::Variable("x")};
  EXPECT_EQ(p.Variables(), (std::vector<std::string>{"x"}));
}

TEST(QueryTest, VariablesInFirstOccurrenceOrder) {
  Query q({{Term::Variable("y"), Term::Resource("p"), Term::Variable("x")},
           {Term::Variable("x"), Term::Resource("q"), Term::Variable("z")}},
          {});
  EXPECT_EQ(q.Variables(), (std::vector<std::string>{"y", "x", "z"}));
}

TEST(QueryTest, EffectiveProjectionDefaultsToAllVariables) {
  Query q({{Term::Variable("x"), Term::Resource("p"), Term::Variable("y")}},
          {});
  EXPECT_EQ(q.EffectiveProjection(), (std::vector<std::string>{"x", "y"}));
  Query q2({{Term::Variable("x"), Term::Resource("p"), Term::Variable("y")}},
           {"y"});
  EXPECT_EQ(q2.EffectiveProjection(), (std::vector<std::string>{"y"}));
}

TEST(QueryTest, ValidateRejectsEmptyQuery) {
  Query q;
  EXPECT_EQ(q.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(QueryTest, ValidateRejectsUnknownProjectionVariable) {
  Query q({{Term::Variable("x"), Term::Resource("p"), Term::Resource("O")}},
          {"nope"});
  EXPECT_EQ(q.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(QueryTest, ValidateAcceptsPaperQueryC) {
  // AlbertEinstein affiliation ?x ; ?x member IvyLeague
  Query q({{Term::Resource("AlbertEinstein"), Term::Resource("affiliation"),
            Term::Variable("x")},
           {Term::Variable("x"), Term::Resource("member"),
            Term::Resource("IvyLeague")}},
          {"x"});
  EXPECT_TRUE(q.Validate().ok());
}

TEST(QueryTest, ResolveAgainstBindsIds) {
  rdf::Dictionary dict;
  rdf::TermId ulm = dict.InternResource("Ulm");
  rdf::TermId phrase = dict.InternToken("won a nobel for");
  Query q({{Term::Variable("x"), Term::Token("won a nobel for"),
            Term::Resource("Ulm")}},
          {});
  q.ResolveAgainst(dict);
  EXPECT_EQ(q.patterns()[0].p.id, phrase);
  EXPECT_EQ(q.patterns()[0].o.id, ulm);
}

TEST(QueryTest, ResolveAgainstLeavesMissingUnresolved) {
  rdf::Dictionary dict;
  Query q({{Term::Variable("x"), Term::Resource("noSuchPredicate"),
            Term::Variable("y")}},
          {});
  q.ResolveAgainst(dict);
  EXPECT_EQ(q.patterns()[0].p.id, rdf::kNullTerm);
}

TEST(QueryTest, ToStringRoundsTrip) {
  Query q({{Term::Resource("AlbertEinstein"), Term::Resource("affiliation"),
            Term::Variable("x")},
           {Term::Variable("x"), Term::Resource("member"),
            Term::Resource("IvyLeague")}},
          {"x"});
  EXPECT_EQ(q.ToString(),
            "SELECT ?x WHERE AlbertEinstein affiliation ?x ; ?x member "
            "IvyLeague");
}

}  // namespace
}  // namespace trinit::query
