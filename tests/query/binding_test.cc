#include "query/binding.h"

#include <gtest/gtest.h>

#include "query/parser.h"

namespace trinit::query {
namespace {

Query ParseOk(const char* text) {
  auto r = Parser::Parse(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return std::move(r).value();
}

TEST(VarTableTest, AssignsIdsInFirstOccurrenceOrder) {
  Query q = ParseOk("?y p ?x ; ?x q ?z");
  VarTable table(q);
  EXPECT_EQ(table.size(), 3u);
  EXPECT_EQ(table.Require("y"), 0u);
  EXPECT_EQ(table.Require("x"), 1u);
  EXPECT_EQ(table.Require("z"), 2u);
  EXPECT_FALSE(table.Find("missing").has_value());
}

TEST(BindingTest, BindAndGet) {
  Binding b(2);
  EXPECT_FALSE(b.IsBound(0));
  EXPECT_TRUE(b.Bind(0, 42));
  EXPECT_TRUE(b.IsBound(0));
  EXPECT_EQ(b.Get(0), 42u);
  EXPECT_FALSE(b.IsComplete());
  EXPECT_TRUE(b.Bind(1, 7));
  EXPECT_TRUE(b.IsComplete());
}

TEST(BindingTest, RebindSameValueOk) {
  Binding b(1);
  EXPECT_TRUE(b.Bind(0, 5));
  EXPECT_TRUE(b.Bind(0, 5));
  EXPECT_FALSE(b.Bind(0, 6));  // join conflict
  EXPECT_EQ(b.Get(0), 5u);
}

TEST(BindingTest, MergeCompatible) {
  Binding a(3), b(3);
  a.Bind(0, 1);
  a.Bind(1, 2);
  b.Bind(1, 2);
  b.Bind(2, 3);
  auto merged = a.MergedWith(b);
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(merged->Get(0), 1u);
  EXPECT_EQ(merged->Get(1), 2u);
  EXPECT_EQ(merged->Get(2), 3u);
}

TEST(BindingTest, MergeConflictFails) {
  Binding a(2), b(2);
  a.Bind(0, 1);
  b.Bind(0, 9);
  EXPECT_FALSE(a.MergedWith(b).has_value());
}

TEST(BindingTest, KeyForIsStableAndProjectionScoped) {
  Binding a(3), b(3);
  a.Bind(0, 10);
  a.Bind(1, 20);
  a.Bind(2, 30);
  b.Bind(0, 10);
  b.Bind(1, 99);
  b.Bind(2, 30);
  std::vector<VarId> proj{0, 2};
  EXPECT_EQ(a.KeyFor(proj), b.KeyFor(proj));  // differ only off-projection
  std::vector<VarId> all{0, 1, 2};
  EXPECT_NE(a.KeyFor(all), b.KeyFor(all));
}

TEST(BindingTest, KeyDistinguishesOrderedValues) {
  Binding a(2), b(2);
  a.Bind(0, 1);
  a.Bind(1, 12);
  b.Bind(0, 11);
  b.Bind(1, 2);
  // Without the separator "1|12|" vs "11|2|" could collide as "112".
  EXPECT_NE(a.KeyFor({0, 1}), b.KeyFor({0, 1}));
}

TEST(BindingTest, ToStringRendersBoundVars) {
  rdf::Dictionary dict;
  rdf::TermId e = dict.InternResource("AlbertEinstein");
  Query q = ParseOk("?x p ?y");
  VarTable table(q);
  Binding b(2);
  b.Bind(0, e);
  EXPECT_EQ(b.ToString(table, dict), "?x=AlbertEinstein");
}

}  // namespace
}  // namespace trinit::query
