#ifndef TRINIT_TESTS_TESTING_PAPER_WORLD_H_
#define TRINIT_TESTS_TESTING_PAPER_WORLD_H_

#include <string>

#include "relax/manual_rules.h"
#include "relax/rule_set.h"
#include "xkg/xkg_builder.h"

namespace trinit::testing {

/// Builds the paper's running example: the Figure 1 sample KG, the
/// Figure 3 Open-IE extension, plus the type facts Figure 4's rule 1
/// presupposes. Shared by relax/topk/explain tests and the quickstart
/// benches.
inline xkg::Xkg BuildPaperXkg() {
  xkg::XkgBuilder b;
  // Figure 1.
  b.AddKgFact("AlbertEinstein", "bornIn", "Ulm");
  b.AddKgFact("Ulm", "locatedIn", "Germany");
  b.AddKgFact("AlbertEinstein", "bornOn", "1879-03-14",
              /*object_literal=*/true);
  b.AddKgFact("AlfredKleiner", "hasStudent", "AlbertEinstein");
  b.AddKgFact("AlbertEinstein", "affiliation", "IAS");
  b.AddKgFact("PrincetonUniversity", "member", "IvyLeague");
  // Types presupposed by Figure 4 rule 1.
  b.AddKgFact("Germany", "type", "country");
  b.AddKgFact("Ulm", "type", "city");
  // Figure 3 extension triples.
  b.AddExtraction("AlbertEinstein", true, "won Nobel for",
                  "discovery of the photoelectric effect", false, 0.8f,
                  {1, 0,
                   "Einstein won a Nobel for his discovery of the "
                   "photoelectric effect.",
                   0.8});
  b.AddExtraction("IAS", true, "housed in", "PrincetonUniversity", true,
                  0.9f, {2, 3, "The IAS is housed in Princeton.", 0.9});
  b.AddExtraction("AlbertEinstein", true, "lectured at",
                  "PrincetonUniversity", true, 0.7f,
                  {3, 1, "Einstein lectured at Princeton University.", 0.7});
  b.AddExtraction("AlbertEinstein", true, "met his teacher", "Prof. Kleiner",
                  false, 0.5f,
                  {4, 2, "Einstein met his teacher Prof. Kleiner.", 0.5});
  auto r = b.Build();
  if (!r.ok()) std::abort();
  return std::move(r).value();
}

/// The Figure 4 rules, verbatim, plus a type-free geographic expansion
/// ("geo") so user A's bare `?x bornIn Germany` query can relax without
/// stating `Germany type country` (the demo mined such rules; we pin it
/// manually for determinism).
inline const char* kPaperRulesText =
    "rule1: ?x bornIn ?y ; ?y type country => ?x bornIn ?z ; ?z type city "
    "; ?z locatedIn ?y @ 1.0\n"
    "rule2: ?x hasAdvisor ?y => ?y hasStudent ?x @ 1.0\n"
    "rule3: ?x affiliation ?y => ?x affiliation ?z ; ?z 'housed in' ?y "
    "@ 0.8\n"
    "rule4: ?x affiliation ?y => ?x 'lectured at' ?y @ 0.7\n"
    "geo: ?x bornIn ?y => ?x bornIn ?z ; ?z locatedIn ?y @ 0.9\n";

/// Rule set holding the Figure 4 rules (resolved against `xkg`'s
/// dictionary via the query parser's term syntax).
inline relax::RuleSet BuildPaperRules() {
  relax::RuleSet rules;
  auto parsed = relax::ParseManualRules(kPaperRulesText);
  if (!parsed.ok()) std::abort();
  for (relax::Rule& rule : *parsed) {
    if (!rules.Add(std::move(rule)).ok()) std::abort();
  }
  return rules;
}

}  // namespace trinit::testing

#endif  // TRINIT_TESTS_TESTING_PAPER_WORLD_H_
