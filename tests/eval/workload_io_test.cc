#include "eval/workload_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace trinit::eval {
namespace {

Workload MakeSample() {
  Workload w;
  EvalQuery q1;
  q1.id = "q0";
  q1.text = "?x bornIn Germania";
  q1.archetype = "granularity";
  q1.description = "persons born in the country";
  w.queries.push_back(q1);
  EvalQuery q2;
  q2.id = "q1";
  q2.text = "SELECT ?x WHERE ?x affiliation ?u ; ?u campusIn Ulmhof_0";
  q2.archetype = "join-campus";
  w.queries.push_back(q2);
  w.qrels.Set("q0", "Anna_Keller_3|", 3);
  w.qrels.Set("q0", "Boris_Brandt_5|", 1);
  w.qrels.Set("q1", "Clara_Curie_7|", 3);
  return w;
}

TEST(WorkloadIoTest, SaveLoadRoundTrip) {
  Workload original = MakeSample();
  std::string path =
      (std::filesystem::temp_directory_path() / "trinit_workload.tsv")
          .string();
  ASSERT_TRUE(WorkloadIo::Save(original, path).ok());
  auto loaded = WorkloadIo::Load(path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  ASSERT_EQ(loaded->queries.size(), 2u);
  EXPECT_EQ(loaded->queries[0].id, "q0");
  EXPECT_EQ(loaded->queries[0].text, "?x bornIn Germania");
  EXPECT_EQ(loaded->queries[0].archetype, "granularity");
  EXPECT_EQ(loaded->queries[0].description,
            "persons born in the country");
  EXPECT_EQ(loaded->queries[1].archetype, "join-campus");

  EXPECT_EQ(loaded->qrels.Grade("q0", "Anna_Keller_3|"), 3);
  EXPECT_EQ(loaded->qrels.Grade("q0", "Boris_Brandt_5|"), 1);
  EXPECT_EQ(loaded->qrels.Grade("q1", "Clara_Curie_7|"), 3);
  EXPECT_EQ(loaded->qrels.RelevantCount("q0"), 2u);
}

TEST(WorkloadIoTest, LoadFromStringMinimal) {
  auto w = WorkloadIo::LoadFromString(
      "# comment\n"
      "Q\tq0\tinversion\tA hasAdvisor ?x\n"
      "J\tq0\tB|\t3\n");
  ASSERT_TRUE(w.ok()) << w.status();
  ASSERT_EQ(w->queries.size(), 1u);
  EXPECT_EQ(w->qrels.Grade("q0", "B|"), 3);
}

TEST(WorkloadIoTest, RejectsMalformedRows) {
  EXPECT_FALSE(WorkloadIo::LoadFromString("Q\tq0\n").ok());
  EXPECT_FALSE(WorkloadIo::LoadFromString("J\tq0\tkey\n").ok());
  EXPECT_FALSE(WorkloadIo::LoadFromString("Z\twhat\n").ok());
}

TEST(WorkloadIoTest, MissingFileIsIoError) {
  auto w = WorkloadIo::Load("/nonexistent/workload.tsv");
  ASSERT_FALSE(w.ok());
  EXPECT_EQ(w.status().code(), StatusCode::kIoError);
}

TEST(QrelsForEachTest, VisitsAllJudgments) {
  Qrels qrels;
  qrels.Set("q", "a|", 3);
  qrels.Set("q", "b|", 1);
  size_t visits = 0;
  int total = 0;
  qrels.ForEach("q", [&](const std::string&, int grade) {
    ++visits;
    total += grade;
  });
  EXPECT_EQ(visits, 2u);
  EXPECT_EQ(total, 4);
  qrels.ForEach("missing", [&](const std::string&, int) { ++visits; });
  EXPECT_EQ(visits, 2u);
}

}  // namespace
}  // namespace trinit::eval
