#include "eval/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

namespace trinit::eval {
namespace {

TEST(DcgTest, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(DcgAtK({}, 5), 0.0);
  EXPECT_DOUBLE_EQ(DcgAtK({3, 2}, 0), 0.0);
}

TEST(DcgTest, SingleItem) {
  // gain(3) = 2^3 - 1 = 7; discount log2(2) = 1.
  EXPECT_DOUBLE_EQ(DcgAtK({3}, 5), 7.0);
}

TEST(DcgTest, DiscountByRank) {
  double expected = 7.0 + 3.0 / std::log2(3.0);
  EXPECT_NEAR(DcgAtK({3, 2}, 5), expected, 1e-12);
}

TEST(DcgTest, CutoffIgnoresTail) {
  EXPECT_DOUBLE_EQ(DcgAtK({3, 3, 3}, 1), 7.0);
}

TEST(NdcgTest, PerfectRankingIsOne) {
  EXPECT_DOUBLE_EQ(NdcgAtK({3, 2, 1}, {1, 2, 3}, 5), 1.0);
}

TEST(NdcgTest, WorstOrderingBelowOne) {
  double v = NdcgAtK({1, 2, 3}, {1, 2, 3}, 5);
  EXPECT_GT(v, 0.0);
  EXPECT_LT(v, 1.0);
}

TEST(NdcgTest, NoRelevantAnswersIsZero) {
  EXPECT_DOUBLE_EQ(NdcgAtK({0, 0}, {}, 5), 0.0);
}

TEST(NdcgTest, MissingAnswersPenalized) {
  // Retrieved only one of two relevant.
  double partial = NdcgAtK({3}, {3, 3}, 5);
  EXPECT_GT(partial, 0.0);
  EXPECT_LT(partial, 1.0);
}

TEST(NdcgTest, PaperHeadlineShape) {
  // Sanity: a system finding the right answers at ranks 1-2 crushes one
  // finding a single partial answer at rank 4 (0.775 vs 0.419 flavor).
  double good = NdcgAtK({3, 3, 0, 0, 0}, {3, 3}, 5);
  double poor = NdcgAtK({0, 0, 0, 1, 0}, {3, 3}, 5);
  EXPECT_GT(good, 2 * poor);
}

TEST(PrecisionTest, Basics) {
  EXPECT_DOUBLE_EQ(PrecisionAtK({3, 0, 1, 0}, 4), 0.5);
  EXPECT_DOUBLE_EQ(PrecisionAtK({3}, 5), 0.2);  // missing ranks count
  EXPECT_DOUBLE_EQ(PrecisionAtK({}, 5), 0.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK({1}, 0), 0.0);
}

TEST(AveragePrecisionTest, PerfectRanking) {
  EXPECT_DOUBLE_EQ(AveragePrecision({1, 1}, 2), 1.0);
}

TEST(AveragePrecisionTest, LateHitsPenalized) {
  // Hits at ranks 2 and 4: AP = (1/2 + 2/4) / 2 = 0.5.
  EXPECT_DOUBLE_EQ(AveragePrecision({0, 1, 0, 1}, 2), 0.5);
}

TEST(AveragePrecisionTest, UnretrievedRelevantLowersScore) {
  EXPECT_DOUBLE_EQ(AveragePrecision({1}, 2), 0.5);
  EXPECT_DOUBLE_EQ(AveragePrecision({}, 2), 0.0);
  EXPECT_DOUBLE_EQ(AveragePrecision({1}, 0), 0.0);
}

TEST(ReciprocalRankTest, Basics) {
  EXPECT_DOUBLE_EQ(ReciprocalRank({0, 0, 2}), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(ReciprocalRank({3}), 1.0);
  EXPECT_DOUBLE_EQ(ReciprocalRank({0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(ReciprocalRank({}), 0.0);
}

// Property sweep: NDCG is within [0,1] and monotone under swapping a
// better answer earlier.
class NdcgPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(NdcgPropertyTest, BoundedAndMonotone) {
  int n = GetParam();
  std::vector<int> grades, ideal;
  for (int i = 0; i < n; ++i) {
    grades.push_back((i * 7 + 3) % 4);
    ideal.push_back((i * 7 + 3) % 4);
  }
  double v = NdcgAtK(grades, ideal, n);
  EXPECT_GE(v, 0.0);
  EXPECT_LE(v, 1.0 + 1e-12);
  // Swapping a higher grade to the front never lowers NDCG.
  std::vector<int> improved = grades;
  auto best = std::max_element(improved.begin(), improved.end());
  std::iter_swap(improved.begin(), best);
  EXPECT_GE(NdcgAtK(improved, ideal, n) + 1e-12, v);
}

INSTANTIATE_TEST_SUITE_P(Sizes, NdcgPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 10, 25));

}  // namespace
}  // namespace trinit::eval
