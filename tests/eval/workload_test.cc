#include "eval/workload.h"

#include <gtest/gtest.h>

#include <set>

#include "query/parser.h"

namespace trinit::eval {
namespace {

synth::World SmallWorld() {
  synth::WorldSpec spec;
  spec.seed = 5;
  spec.num_persons = 80;
  spec.num_universities = 10;
  spec.num_institutes = 6;
  spec.num_cities = 15;
  spec.num_countries = 4;
  spec.num_prizes = 4;
  spec.num_fields = 6;
  spec.predicates = synth::WorldSpec::DefaultPredicates();
  return synth::KgGenerator::Generate(spec);
}

TEST(QrelsTest, SetAndGrade) {
  Qrels qrels;
  qrels.Set("q1", "A|", 3);
  qrels.Set("q1", "B|", 1);
  EXPECT_EQ(qrels.Grade("q1", "A|"), 3);
  EXPECT_EQ(qrels.Grade("q1", "B|"), 1);
  EXPECT_EQ(qrels.Grade("q1", "C|"), 0);
  EXPECT_EQ(qrels.Grade("q2", "A|"), 0);
  EXPECT_EQ(qrels.RelevantCount("q1"), 2u);
}

TEST(QrelsTest, SetKeepsMaxGrade) {
  Qrels qrels;
  qrels.Set("q1", "A|", 1);
  qrels.Set("q1", "A|", 3);
  qrels.Set("q1", "A|", 2);
  EXPECT_EQ(qrels.Grade("q1", "A|"), 3);
}

TEST(MakeAnswerKeyTest, JoinsLabels) {
  EXPECT_EQ(MakeAnswerKey({"A"}), "A|");
  EXPECT_EQ(MakeAnswerKey({"A", "B"}), "A|B|");
  EXPECT_EQ(MakeAnswerKey({""}), "?|");
}

TEST(WorkloadGeneratorTest, GeneratesRequestedCount) {
  // A world large enough that no archetype saturates below its share.
  synth::WorldSpec spec;
  spec.seed = 5;
  spec.num_persons = 250;
  spec.num_universities = 25;
  spec.num_institutes = 12;
  spec.num_cities = 35;
  spec.num_countries = 10;
  spec.num_prizes = 10;
  spec.num_fields = 10;
  spec.predicates = synth::WorldSpec::DefaultPredicates();
  synth::World world = synth::KgGenerator::Generate(spec);
  WorkloadGenerator::Options opts;
  opts.num_queries = 70;  // the paper's size
  Workload workload = WorkloadGenerator::Generate(world, opts);
  EXPECT_EQ(workload.queries.size(), 70u);
}

TEST(WorkloadGeneratorTest, SaturatedWorldYieldsFewerButValidQueries) {
  synth::World world = SmallWorld();
  WorkloadGenerator::Options opts;
  opts.num_queries = 500;  // more than the small world can express
  Workload workload = WorkloadGenerator::Generate(world, opts);
  EXPECT_GT(workload.queries.size(), 30u);
  EXPECT_LT(workload.queries.size(), 500u);
  for (const EvalQuery& q : workload.queries) {
    EXPECT_GT(workload.qrels.RelevantCount(q.id), 0u);
  }
}

TEST(WorkloadGeneratorTest, Deterministic) {
  synth::World world = SmallWorld();
  Workload a = WorkloadGenerator::Generate(world);
  Workload b = WorkloadGenerator::Generate(world);
  ASSERT_EQ(a.queries.size(), b.queries.size());
  for (size_t i = 0; i < a.queries.size(); ++i) {
    EXPECT_EQ(a.queries[i].text, b.queries[i].text);
  }
}

TEST(WorkloadGeneratorTest, QueriesAreParseable) {
  synth::World world = SmallWorld();
  Workload workload = WorkloadGenerator::Generate(world);
  for (const EvalQuery& q : workload.queries) {
    auto parsed = query::Parser::Parse(q.text);
    EXPECT_TRUE(parsed.ok()) << q.id << ": " << q.text << " -> "
                             << parsed.status();
  }
}

TEST(WorkloadGeneratorTest, EveryQueryHasRelevantAnswers) {
  synth::World world = SmallWorld();
  Workload workload = WorkloadGenerator::Generate(world);
  for (const EvalQuery& q : workload.queries) {
    EXPECT_GT(workload.qrels.RelevantCount(q.id), 0u) << q.id;
  }
}

TEST(WorkloadGeneratorTest, CoversAllArchetypes) {
  synth::World world = SmallWorld();
  Workload workload = WorkloadGenerator::Generate(world);
  std::set<std::string> archetypes;
  for (const EvalQuery& q : workload.queries) {
    archetypes.insert(q.archetype);
  }
  EXPECT_GE(archetypes.size(), 5u) << "archetype mix collapsed";
  EXPECT_TRUE(archetypes.count("granularity"));
  EXPECT_TRUE(archetypes.count("text-only"));
  EXPECT_TRUE(archetypes.count("paraphrase"));
}

TEST(WorkloadGeneratorTest, UniqueQueryTexts) {
  synth::World world = SmallWorld();
  Workload workload = WorkloadGenerator::Generate(world);
  std::set<std::string> texts;
  for (const EvalQuery& q : workload.queries) {
    EXPECT_TRUE(texts.insert(q.text).second) << "duplicate " << q.text;
  }
}

TEST(WorkloadGeneratorTest, JoinQueriesHaveTwoPatterns) {
  synth::World world = SmallWorld();
  Workload workload = WorkloadGenerator::Generate(world);
  for (const EvalQuery& q : workload.queries) {
    if (q.archetype.rfind("join", 0) == 0) {
      auto parsed = query::Parser::Parse(q.text);
      ASSERT_TRUE(parsed.ok());
      EXPECT_EQ(parsed->patterns().size(), 2u) << q.text;
    }
  }
}

}  // namespace
}  // namespace trinit::eval
